"""Hardened execution policy: bounded retry, timeout, quarantine.

TVM-style operator autotuners survive thousands of failing candidates by
isolating each profile run and skipping the ones that keep dying (Cowan
et al.).  :func:`call_with_policy` is that isolation boundary for our
simulated profile runs and other retryable unit work:

* **fast path** — with no timeout configured, the call is a plain
  ``fn()`` inside ``try``; zero threads, zero overhead on success;
* **bounded retry** — library errors (:class:`~repro.errors.ReproError`,
  which includes injected faults) and timeouts are retried up to
  ``retries`` times with exponential backoff (``backoff_s * 2**attempt``,
  deterministic, no jitter — reproducibility beats thundering-herd
  avoidance inside one process);
* **timeout** — with ``timeout_s`` set, the call runs on a daemon worker
  thread and is abandoned when the clock expires (the only portable
  option for pure-python work; the stuck thread finishes in the
  background while the search moves on);
* **permanent failure** — when every attempt fails the last error is
  re-raised wrapped in :class:`PermanentFailure`, and the caller decides:
  the autotuner quarantines the candidate and continues over survivors,
  the executor falls back to the ``ref`` backend;
* **deadline propagation** — an absolute ``deadline`` (on the caller's
  ``now`` timebase, which the serving simulator points at its virtual
  clock) caps every per-attempt timeout and every backoff sleep: a retry
  that would outlive the caller's deadline is wasted work and is skipped,
  raising :class:`PermanentFailure` around :class:`DeadlineExceeded`
  immediately instead.

Environment defaults (read per call, so tests can flip them):

* ``REPRO_RETRY``     — retry count after the first attempt (default 2)
* ``REPRO_TIMEOUT_S`` — per-attempt wall-clock timeout (default: none)
* ``REPRO_BACKOFF_S`` — backoff base seconds (default 0.05)

Everything lands in metrics: ``resilience_retries{site=}``,
``resilience_timeouts{site=}``, ``resilience_permanent_failures{site=}``,
``resilience_quarantined{site=}``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from ..errors import ReproError
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics

T = TypeVar("T")

RETRY_ENV = "REPRO_RETRY"
TIMEOUT_ENV = "REPRO_TIMEOUT_S"
BACKOFF_ENV = "REPRO_BACKOFF_S"

_DEFAULT_RETRIES = 2
_DEFAULT_BACKOFF_S = 0.05


class PermanentFailure(ReproError):
    """Every attempt of a policy-guarded call failed."""

    def __init__(self, site: str, key: str, attempts: int,
                 last: BaseException) -> None:
        super().__init__(
            f"{site!r} failed permanently after {attempts} attempt(s) "
            f"(key={key!r}): {type(last).__name__}: {last}"
        )
        self.site = site
        self.key = key
        self.attempts = attempts
        self.last = last


class CallTimeout(ReproError):
    """One attempt exceeded the policy's wall-clock budget."""

    def __init__(self, site: str, timeout_s: float) -> None:
        super().__init__(f"{site!r} timed out after {timeout_s:g}s")
        self.site = site
        self.timeout_s = timeout_s


class DeadlineExceeded(ReproError):
    """The caller's absolute deadline passed before the call could finish
    (or before a retry could usefully start)."""

    def __init__(self, site: str, deadline: float) -> None:
        super().__init__(f"{site!r} deadline {deadline:g} exceeded")
        self.site = site
        self.deadline = deadline


def _env_float(name: str, default: float | None) -> float | None:
    text = os.environ.get(name, "").strip()
    if not text:
        return default
    try:
        return float(text)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    text = os.environ.get(name, "").strip()
    if not text:
        return default
    try:
        return max(0, int(text))
    except ValueError:
        return default


@dataclass(frozen=True)
class ExecPolicy:
    """Retry/timeout knobs for one class of guarded calls."""

    retries: int = _DEFAULT_RETRIES
    timeout_s: float | None = None
    backoff_s: float = _DEFAULT_BACKOFF_S

    @classmethod
    def resolve(
        cls,
        *,
        retries: int | None = None,
        timeout_s: float | None = None,
        backoff_s: float | None = None,
    ) -> "ExecPolicy":
        """Explicit args > environment > defaults.

        Every source is sanitized the same way: malformed env floats fall
        back to the default, negative retries clamp to 0 (one attempt,
        never zero), a zero/negative timeout means "no timeout", and a
        negative backoff means "no backoff" — a policy built here can
        never make :func:`call_with_policy` sleep a negative duration or
        skip the first attempt.
        """
        retries = (retries if retries is not None
                   else _env_int(RETRY_ENV, _DEFAULT_RETRIES))
        timeout = (timeout_s if timeout_s is not None
                   else _env_float(TIMEOUT_ENV, None))
        backoff = (backoff_s if backoff_s is not None
                   else _env_float(BACKOFF_ENV, _DEFAULT_BACKOFF_S))
        return cls(
            retries=max(0, retries),
            timeout_s=timeout if timeout is not None and timeout > 0 else None,
            backoff_s=backoff if backoff is not None and backoff > 0 else 0.0,
        )


def _run_with_timeout(fn: Callable[[], T], timeout_s: float, site: str) -> T:
    """Run ``fn`` on a daemon thread; abandon it past ``timeout_s``."""
    result: list[Any] = []
    error: list[BaseException] = []

    def worker() -> None:
        try:
            result.append(fn())
        except BaseException as exc:  # noqa: BLE001 - re-raised on the caller
            error.append(exc)

    thread = threading.Thread(
        target=worker, name=f"policy-{site}", daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise CallTimeout(site, timeout_s)
    if error:
        raise error[0]
    return result[0]


def call_with_policy(
    fn: Callable[[], T],
    *,
    site: str,
    key: str = "",
    policy: ExecPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (ReproError,),
    sleep: Callable[[float], None] = time.sleep,
    deadline: float | None = None,
    now: Callable[[], float] = time.monotonic,
) -> T:
    """``fn()`` under retry/timeout; raises :class:`PermanentFailure`.

    ``retry_on`` classifies retryable errors — anything else (e.g. a
    programming error like ``TypeError``) propagates immediately on the
    first attempt, exactly as an unguarded call would.

    ``deadline`` is an *absolute* instant on the ``now`` timebase
    (``time.monotonic`` by default; the serving simulator passes its
    virtual clock).  When set, it caps each attempt's timeout at the time
    remaining, caps every backoff sleep the same way, and refuses to
    start an attempt once the deadline has passed — a retry must never
    outlive the request that asked for it.  Running out of deadline
    raises :class:`PermanentFailure` whose ``last`` is the prior error,
    or :class:`DeadlineExceeded` when no attempt ever ran.
    """
    policy = policy if policy is not None else ExecPolicy.resolve()
    attempts = policy.retries + 1
    last: BaseException | None = None
    tried = 0
    for attempt in range(attempts):
        timeout = policy.timeout_s
        if deadline is not None:
            remaining = deadline - now()
            if remaining <= 0:
                obs_metrics.counter(
                    "resilience_deadline_exceeded", site=site).inc()
                if last is None:
                    last = DeadlineExceeded(site, deadline)
                break
            if timeout is not None:
                timeout = min(timeout, remaining)
        tried += 1
        try:
            if timeout is not None and timeout > 0:
                return _run_with_timeout(fn, timeout, site)
            return fn()
        except CallTimeout as exc:
            last = exc
            obs_metrics.counter("resilience_timeouts", site=site).inc()
            obs_log.warning(
                "call_timeout", logger="repro.resilience.policy",
                site=site, key=key, attempt=attempt + 1,
                timeout_s=timeout,
            )
        except retry_on as exc:
            last = exc
        if attempt + 1 < attempts:
            obs_metrics.counter("resilience_retries", site=site).inc()
            obs_log.info(
                "call_retry", logger="repro.resilience.policy",
                site=site, key=key, attempt=attempt + 1,
                error=type(last).__name__,
            )
            if policy.backoff_s > 0:
                delay = policy.backoff_s * (2 ** attempt)
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - now()))
                if delay > 0:
                    sleep(delay)
    assert last is not None
    obs_metrics.counter("resilience_permanent_failures", site=site).inc()
    obs_log.warning(
        "call_permanent_failure", logger="repro.resilience.policy",
        site=site, key=key, attempts=tried, error=type(last).__name__,
    )
    raise PermanentFailure(site, key, tried, last)


@dataclass
class _QuarantineEntry:
    reason: str
    since: float
    probing: bool = False


class Quarantine:
    """Inputs that failed permanently and should be skipped, per site.

    A thin thread-safe set with failure provenance; sweeps consult
    :meth:`contains` up front (skipping costs nothing) and :meth:`add`
    on :class:`PermanentFailure`.  In-process only by design: a
    quarantined *simulated* candidate is a code bug or an injected
    fault, and pinning it across processes would mask the fix.

    With no ``ttl_s`` (the default) entries are permanent for the process
    lifetime — the right model for deterministic candidates, where a
    repeat offender stays broken.  With ``ttl_s`` set, quarantine becomes
    *recoverable* via the half-open protocol circuit breakers use:

    * :meth:`contains` keeps answering True — expiry alone never
      re-admits general traffic;
    * once ``ttl_s`` has elapsed since the entry (re-)armed,
      :meth:`allow_probe` grants exactly one caller a probe ticket;
    * the prober reports back: :meth:`release` on success removes the
      entry (closed again), :meth:`add` on failure re-arms the TTL and
      clears the outstanding ticket (back to fully open).

    ``now`` is the clock the TTL is measured on (``time.monotonic`` by
    default; the serving simulator passes its virtual clock), and every
    time-taking method also accepts an explicit ``now=`` instant.
    """

    def __init__(
        self,
        site: str,
        *,
        ttl_s: float | None = None,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"quarantine ttl_s must be > 0, got {ttl_s}")
        self.site = site
        self.ttl_s = ttl_s
        self._now = now
        self._entries: dict[str, _QuarantineEntry] = {}
        self._lock = threading.Lock()

    def _clock(self, now: float | None) -> float:
        return self._now() if now is None else now

    def add(self, key: str, reason: str = "", *, now: float | None = None) -> None:
        """Quarantine ``key`` (re-adding re-arms the TTL and clears any
        outstanding probe ticket — a failed probe goes back to open)."""
        at = self._clock(now)
        with self._lock:
            fresh = key not in self._entries
            self._entries[key] = _QuarantineEntry(reason=reason, since=at)
        if fresh:
            obs_metrics.counter("resilience_quarantined", site=self.site).inc()
            obs_log.warning(
                "quarantined", logger="repro.resilience.policy",
                site=self.site, key=key, reason=reason,
            )

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def allow_probe(self, key: str, now: float | None = None) -> bool:
        """One half-open probe ticket for ``key`` once the TTL elapsed.

        Returns True at most once per (re-)arming: the first caller after
        expiry gets the ticket, everyone else keeps seeing False until
        the prober settles the entry via :meth:`release` (success) or
        :meth:`add` (failure, re-arms).  Always False without a TTL or
        for keys not quarantined.
        """
        if self.ttl_s is None:
            return False
        at = self._clock(now)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.probing or at - entry.since < self.ttl_s:
                return False
            entry.probing = True
        obs_metrics.counter("resilience_probes", site=self.site).inc()
        obs_log.info(
            "quarantine_probe", logger="repro.resilience.policy",
            site=self.site, key=key,
        )
        return True

    def probing(self, key: str) -> bool:
        """True while a probe ticket for ``key`` is outstanding."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.probing

    def release(self, key: str) -> bool:
        """Remove ``key`` from quarantine (probe succeeded); True if it
        was present."""
        with self._lock:
            removed = self._entries.pop(key, None) is not None
        if removed:
            obs_metrics.counter(
                "resilience_quarantine_released", site=self.site).inc()
            obs_log.info(
                "quarantine_released", logger="repro.resilience.policy",
                site=self.site, key=key,
            )
        return removed

    def entries(self) -> dict[str, str]:
        with self._lock:
            return {k: e.reason for k, e in self._entries.items()}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
