"""Scripted chaos scenarios behind ``python -m repro chaos``.

Four scenarios exercise the resilience layer end to end, each with its
own pass/fail verdict (the CLI exits non-zero when any check fails);
``python -m repro chaos <name>`` runs a subset, ``--list`` enumerates:

* **autotune-invariance** — a seeded fault plan makes ~30% of profile
  runs fail transiently (twice per selected candidate); with the retry
  budget covering the transient ``times``, the sweep must finish with
  the *bit-identical* winning tiling and cycle count of the fault-free
  sweep, zero candidates skipped.  This is the acceptance invariant of
  the whole hardened-autotune design.
* **executor-degradation** — every ``executor.price_conv`` call faults
  once; the graph report must still complete (each conv re-priced on
  the ``ref`` backend) and the ``resilience_fallbacks`` counter must
  show the degradation was not silent.
* **persistence-crash-safety** — injected crashes at the persistence
  sites (``cache.put`` before any bytes move, ``cache.put.tmp`` inside
  the write/rename window, ``history.append``) plus hand-torn artifacts
  must leave *zero* torn files: every surviving cache entry parses, no
  stranded temp files, corrupt entries land in ``.quarantine/`` and
  re-miss cleanly, and a torn ledger tail is recovered on startup.
* **serve-slo** — a short :mod:`repro.serve` replay under the serving
  chaos plan (transient dispatch faults + a scripted primary kill): the
  breaker must open and re-close through a half-open probe, admitted
  requests must keep >=99% SLO attainment (overload is shed at
  admission, not timed out in queue), request accounting must conserve,
  and two identical replays must produce byte-identical summaries.

The scenarios run against throwaway temp directories and scoped
:func:`repro.resilience.faults.fault_plan` installs, so they never
disturb the user's real cache, ledger, or environment-driven plan.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field

from ..obs import metrics as obs_metrics
from ..types import ConvSpec, GemmShape
from . import atomic as res_atomic
from .faults import FaultPlan, fault_plan

#: the canned plan the CI chaos job exports as ``REPRO_FAULTS`` when it
#: re-runs the tier-1 suite under fault injection (≥10% of autotune
#: candidates fail transiently; cache reads/writes misbehave at low rate)
CANNED_SPEC = (
    "autotune.profile:raise:0.3:2;"
    "cache.get:garbage:0.15:1;"
    "cache.put:raise:0.1:1"
)
#: seed fixed so a failing chaos run replays exactly
CANNED_SEED = 20200806


@dataclass
class ScenarioResult:
    """Verdict of one chaos scenario."""

    name: str
    passed: bool
    checks: list[str] = field(default_factory=list)  #: "ok: ..." / "FAIL: ..."

    def check(self, ok: bool, label: str) -> bool:
        self.checks.append(f"{'ok' if ok else 'FAIL'}: {label}")
        if not ok:
            self.passed = False
        return ok


@contextlib.contextmanager
def _env(**overrides: str):
    """Scoped environment overrides (restored on exit)."""
    old = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


# ---------------------------------------------------------------------------
# Scenario A: autotune winner is invariant under transient faults
# ---------------------------------------------------------------------------

#: a mid-sized GEMM (conv-ish shape) — big enough that the sweep visits
#: many candidates, small enough that the chaos run stays a smoke test
_GEMM = GemmShape(m=128, k=576, n=196)
_BITS = 4


def scenario_autotune_invariance() -> ScenarioResult:
    """Transient profile-run faults must not change the sweep's answer."""
    from ..gpu.autotune import autotune, clear_cache

    res = ScenarioResult("autotune-invariance", passed=True)

    clear_cache()
    # a plan on the profile site degrades the chaotic sweep to the
    # scalar pricing engine; baseline on the same engine so the
    # evaluated-candidate tallies compare one-to-one
    with _env(REPRO_NO_CACHE="1", REPRO_NO_VECTOR="1"), fault_plan(None):
        base = autotune(_GEMM, _BITS, persistent=False)

    clear_cache()
    plan = FaultPlan.from_spec(
        "autotune.profile:raise:0.3:2", seed=CANNED_SEED)
    # retries (3) > times (2): every transient fault is absorbed
    with _env(REPRO_NO_CACHE="1", REPRO_RETRY="3", REPRO_BACKOFF_S="0"), \
            fault_plan(plan):
        chaotic = autotune(_GEMM, _BITS, persistent=False)
    clear_cache()

    injected = plan.total_injected()
    # rate 0.3 × times 2 ≈ 0.6 injections per evaluated candidate; demand
    # at least the acceptance floor of 10% of candidates faulting
    floor = max(1, chaotic.evaluated // 10)
    res.check(injected >= floor,
              f"faults actually fired ({injected} injections over "
              f"{chaotic.evaluated} profiled candidates, floor {floor})")
    res.check(chaotic.best == base.best,
              f"winning tiling identical ({chaotic.best} == {base.best})")
    res.check(chaotic.best_cycles == base.best_cycles,
              f"winning cycles bit-identical ({chaotic.best_cycles!r})")
    res.check(chaotic.skipped == 0,
              f"no candidate lost to quarantine (skipped={chaotic.skipped})")
    res.check(chaotic.evaluated == base.evaluated,
              f"same candidates profiled ({chaotic.evaluated} == "
              f"{base.evaluated})")
    return res


# ---------------------------------------------------------------------------
# Scenario B: executor degrades to the ref backend instead of crashing
# ---------------------------------------------------------------------------

_SPEC = ConvSpec("chaos_conv", in_channels=64, out_channels=64,
                 height=16, width=16, kernel=(3, 3), padding=(1, 1))


def scenario_executor_degradation() -> ScenarioResult:
    """A failing backend price must fall back to ``ref``, loudly."""
    from ..runtime.executor import estimate_graph_cycles
    from ..runtime.graph import conv_pipeline

    res = ScenarioResult("executor-degradation", passed=True)
    graph = conv_pipeline(_SPEC, _BITS)
    fallbacks = obs_metrics.counter(
        "resilience_fallbacks", backend="gpu", op="conv")
    before = fallbacks.value

    with fault_plan("executor.price_conv:raise:1.0:1", seed=CANNED_SEED):
        report = estimate_graph_cycles(graph, "gpu", jobs=1)

    res.check(report.total_cycles > 0,
              f"graph report completed ({report.total_cycles:,.0f} cycles)")
    res.check(len(report.op_cycles) == len(graph),
              f"every op priced ({len(report.op_cycles)}/{len(graph)})")
    res.check(fallbacks.value > before,
              f"fallback counted (resilience_fallbacks "
              f"{before} -> {fallbacks.value})")
    return res


# ---------------------------------------------------------------------------
# Scenario C: no injected crash leaves a torn persistent artifact
# ---------------------------------------------------------------------------


def _torn_artifacts(root: pathlib.Path) -> list[pathlib.Path]:
    """Every stranded temp file or unparseable JSON artifact under
    ``root`` (quarantine dirs excluded — that is where evidence lives)."""
    torn: list[pathlib.Path] = []
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        if res_atomic.QUARANTINE_DIR in path.parts:
            continue
        if path.suffix == ".tmp":
            torn.append(path)
        elif path.suffix == ".json":
            try:
                json.loads(path.read_text(encoding="utf-8"))
            except (ValueError, UnicodeDecodeError, OSError):
                torn.append(path)
        elif path.suffix == ".jsonl":
            for line in path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                try:
                    json.loads(line)
                except ValueError:
                    torn.append(path)
                    break
    return torn


def scenario_persistence_crash_safety() -> ScenarioResult:
    """Crashes at every persistence site leave old-or-new, never torn."""
    from ..obs.history import BenchLedger
    from ..perf.cache import PersistentCache

    res = ScenarioResult("persistence-crash-safety", passed=True)
    # force-enable disk traffic: callers (tests) may have REPRO_NO_CACHE
    # set globally, but this scenario owns an isolated temp root
    with _env(REPRO_NO_CACHE=""), \
            tempfile.TemporaryDirectory(prefix="repro-chaos-") as td:
        root = pathlib.Path(td)

        # -- cache puts under crash injection at both windows ---------------
        cache = PersistentCache("chaos", root=root)
        spec = ("cache.put:raise:0.2:0;"        # crash before bytes move
                "cache.put.tmp:raise:0.3:0")    # crash inside the window
        with fault_plan(spec, seed=CANNED_SEED):
            stored = sum(
                cache.put(f"{i:064x}", {"i": i}) for i in range(32))
        res.check(0 < stored < 32,
                  f"put mix of successes and injected crashes "
                  f"({stored}/32 stored)")
        survivors = list(cache.directory().glob("*.json"))
        res.check(len(survivors) == stored,
                  f"every successful put is on disk ({len(survivors)})")

        # -- corrupt entry: quarantined on read, then a clean miss ----------
        digest = "f" * 64
        cache.put(digest, {"ok": True})
        cache.path_for(digest).write_text("{torn", encoding="utf-8")
        first = cache.get(digest)
        qdir = res_atomic.quarantine_dir_for(cache.path_for(digest))
        res.check(first is None, "corrupt entry read degrades to a miss")
        res.check(qdir.is_dir() and any(qdir.iterdir()),
                  "corrupt entry moved into .quarantine/")
        res.check(not cache.path_for(digest).exists() and
                  cache.get(digest) is None,
                  "second lookup is a clean FileNotFoundError miss")

        # -- ledger: torn tail recovered, failed append leaves no bytes ----
        ledger = BenchLedger(root / "history")
        entry = {"schema": 3, "run_id": "chaos-1", "model_cycles": {}}
        ledger.append(dict(entry))
        with open(ledger.path, "ab") as fh:  # simulate kill -9 mid-append
            fh.write(b'{"schema": 3, "run_id": "chaos-2", "mo')
        recovered = ledger.recover()
        res.check(recovered > 0, f"torn tail recovered ({recovered} bytes)")
        res.check(len(ledger.entries()) == 1,
                  "only the complete record survives")
        size_before = ledger.path.stat().st_size
        with fault_plan("history.append:raise:1:0", seed=CANNED_SEED):
            try:
                ledger.append(dict(entry, run_id="chaos-3"))
                appended = True
            except Exception:
                appended = False
        res.check(not appended and ledger.path.stat().st_size == size_before,
                  "failed append leaves the ledger byte-identical")

        # -- the global claim: nothing anywhere is torn ---------------------
        torn = _torn_artifacts(root)
        res.check(not torn,
                  "zero torn/partial artifacts on disk"
                  + (f" (found: {[str(p) for p in torn]})" if torn else ""))
    return res


# ---------------------------------------------------------------------------
# Scenario D: the serving layer holds its SLO under chaos
# ---------------------------------------------------------------------------


def scenario_serve_slo() -> ScenarioResult:
    """A chaos serving replay keeps its SLO, breaks and heals the
    breaker, sheds at admission, and replays byte-identically."""
    from ..serve import CostTable, ServeConfig, run_serve, summary_digest
    from ..serve.harness import KILL_WINDOW, chaos_spec

    res = ScenarioResult("serve-slo", passed=True)
    horizon_us = 5000 / 2000 * 1e6
    cfg = ServeConfig(
        qps=2000, requests=5000, seed=7,
        kill_start_us=KILL_WINDOW[0] * horizon_us,
        kill_end_us=KILL_WINDOW[1] * horizon_us)
    primary = CostTable.build(
        cfg.backend, cfg.model, bits=cfg.bits, max_batch=cfg.max_batch,
        overhead_us=cfg.dispatch_overhead_us)
    fallback = CostTable.build(
        cfg.fallback, cfg.model, bits=cfg.bits, max_batch=cfg.max_batch,
        overhead_us=cfg.dispatch_overhead_us)
    summaries = []
    for _ in range(2):
        # a fresh plan per run: the firing ledger is stateful by design
        with fault_plan(chaos_spec(cfg.backend), seed=cfg.seed):
            summaries.append(run_serve(
                cfg, primary_table=primary, fallback_table=fallback))
    s = summaries[0]
    counts = s["counts"]
    shed = counts["shed"]["total"]
    res.check(bool(s["invariants"]["conservation"]),
              "request accounting conserves "
              f"(offered {counts['offered']} = admitted {counts['admitted']}"
              f" + shed {shed}; completed {counts['completed']}"
              f" + expired {counts['expired']})")
    res.check(sum(s["faults_injected"].values()) > 0,
              f"transient faults actually fired ({s['faults_injected']})")
    res.check(s["slo_attainment"] >= 0.99,
              f"SLO attainment over admitted >= 99% "
              f"({s['slo_attainment']:.4f})")
    res.check(shed > 0 and counts["expired"] <= counts["admitted"] * 1e-3,
              f"overload shed at admission, not in queue "
              f"(shed {shed}, queue expiries {counts['expired']})")
    brk = s["breaker"]
    res.check(brk["opens"] >= 1 and brk["closes"] >= 1,
              f"breaker opened and re-closed via probe (opens {brk['opens']},"
              f" closes {brk['closes']}, "
              f"probe_failures {brk['probe_failures']})")
    res.check(summary_digest(summaries[0]) == summary_digest(summaries[1]),
              "two identical replays are byte-identical "
              f"(sha256 {summary_digest(summaries[0])[:12]})")
    return res


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

SCENARIOS = {
    "autotune-invariance": scenario_autotune_invariance,
    "executor-degradation": scenario_executor_degradation,
    "persistence-crash-safety": scenario_persistence_crash_safety,
    "serve-slo": scenario_serve_slo,
}


def scenario_names() -> tuple[str, ...]:
    return tuple(SCENARIOS)


def run_chaos(echo=print, names=None) -> int:
    """Run the named scenarios (all by default); 0 iff every check passes.

    Unknown names are the caller's bug: :class:`KeyError` — the CLI
    validates first and exits 2 with the valid choices.
    """
    selected = tuple(names) if names else scenario_names()
    results = []
    for name in selected:
        result = SCENARIOS[name]()
        results.append(result)
        echo(f"[{'PASS' if result.passed else 'FAIL'}] {result.name}")
        for line in result.checks:
            echo(f"    {line}")
    failed = [r.name for r in results if not r.passed]
    if failed:
        echo(f"chaos FAILED: {', '.join(failed)}")
        return 1
    echo(f"chaos OK: {len(results)} scenarios, "
         f"{sum(len(r.checks) for r in results)} checks")
    return 0
