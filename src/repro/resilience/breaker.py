"""Per-backend circuit breakers over the recoverable :class:`Quarantine`.

The serving layer (:mod:`repro.serve`) dispatches batches to a priced
backend.  A backend that starts failing every batch must be cut off
*quickly* (each failed batch burns its requests' deadlines in retries)
but re-admitted *automatically* once it heals — the classic three-state
circuit breaker:

``closed``
    Normal traffic.  Failures increment a consecutive-failure count;
    hitting ``failure_threshold`` trips the breaker open (successes
    reset the count).
``open``
    All traffic is diverted (the caller browns out to its fallback).
    After ``open_s`` on the breaker's clock, the underlying
    :meth:`Quarantine.allow_probe` grants exactly one probe ticket.
``half_open``
    One probe is in flight on the real backend.  Success closes the
    breaker (full re-admission); failure re-arms ``open_s`` and returns
    to open.

All timing runs on the injected ``now`` callable, so the serving
simulator drives breakers on its virtual clock and chaos replays are
deterministic.  Transitions are counted in metrics
(``breaker_transitions{breaker=,to=}``), dropped into the flight ring, and
kept on :attr:`transitions` for the serve summary.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from ..obs import flight as obs_flight
from ..obs import metrics as obs_metrics
from .policy import Quarantine

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Three-state breaker for one named resource (a serving backend).

    Not thread-safe by design: the serving simulator is a single-threaded
    event loop, and determinism there matters more than lock overhead
    here.  Wrap in a lock if a future caller is concurrent.
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        open_s: float = 1.0,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.open_s = open_s
        self._now = now
        self._quarantine = Quarantine(
            f"breaker.{name}", ttl_s=open_s, now=now)
        self._consecutive_failures = 0
        self.opens = 0
        self.closes = 0
        self.probe_failures = 0
        #: (time_s, new_state) transition log, for summaries/dashboards
        self.transitions: List[Tuple[float, str]] = []

    # -- state ---------------------------------------------------------------

    def state(self) -> str:
        """Current state without consuming a probe ticket."""
        if not self._quarantine.contains(self.name):
            return CLOSED
        return HALF_OPEN if self._quarantine.probing(self.name) else OPEN

    def suspect(self) -> bool:
        """Closed but with recent (un-reset) failures: the window between
        the first permanent failure and the trip.  Callers that *price*
        future work (admission control) should assume degraded service
        here — the backend may be about to go down, and optimistic
        admissions in this window are the ones that die in the queue."""
        return self._consecutive_failures > 0

    def _transition(self, to: str, at: float) -> None:
        self.transitions.append((at, to))
        obs_metrics.counter(
            "breaker_transitions", breaker=self.name, to=to).inc()
        obs_flight.instant(
            "breaker_transition", cat="serve", breaker=self.name, to=to)

    # -- the dispatch-side protocol ------------------------------------------

    def acquire(self, now: float | None = None) -> str:
        """Ask permission to send traffic: ``closed`` | ``probe`` | ``open``.

        ``probe`` means the breaker just went half-open and *this* call
        holds the single probe ticket — the caller must dispatch to the
        real backend and report back via :meth:`record_success` or
        :meth:`record_failure`.  ``open`` callers go to their fallback
        and report nothing.
        """
        at = self._now() if now is None else now
        if not self._quarantine.contains(self.name):
            return CLOSED
        if self._quarantine.allow_probe(self.name, now=at):
            self._transition(HALF_OPEN, at)
            return "probe"
        return OPEN

    def record_success(self, now: float | None = None) -> None:
        """A dispatch on the real backend succeeded (probe or closed)."""
        at = self._now() if now is None else now
        self._consecutive_failures = 0
        if self._quarantine.release(self.name):
            self.closes += 1
            self._transition(CLOSED, at)

    def record_failure(self, now: float | None = None, reason: str = "") -> None:
        """A dispatch on the real backend failed permanently."""
        at = self._now() if now is None else now
        if self._quarantine.probing(self.name):
            self.probe_failures += 1
            # re-arm: probing flag clears, TTL restarts from the failure
            self._quarantine.add(self.name, reason or "probe failed", now=at)
            self._transition(OPEN, at)
            return
        if self._quarantine.contains(self.name):
            # already open and not probing: a straggler report, ignore
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._quarantine.add(
                self.name, reason or
                f"{self._consecutive_failures} consecutive failures", now=at)
            self.opens += 1
            self._consecutive_failures = 0
            self._transition(OPEN, at)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CircuitBreaker {self.name!r} state={self.state()} "
                f"opens={self.opens} closes={self.closes}>")
