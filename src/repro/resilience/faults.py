"""Deterministic, env/config-driven fault injection.

Chaos engineering only pays off when a failing run can be replayed, so
every decision here is a pure function of ``(plan seed, site, key,
attempt)`` — never of wall-clock time, thread scheduling or a shared RNG
stream.  Two runs with the same plan inject the same faults at the same
operations even if the parallel runner interleaves them differently.

Usage::

    from repro.resilience import faults

    faults.inject("autotune.profile", key=digest)   # may raise/delay
    data = faults.maybe_corrupt("cache.put", data, key=digest)
    value = faults.maybe_garbage("cache.get", value, key=digest)

Sites are dotted names (``cache.put``, ``autotune.profile``,
``history.append``, ...); rules match them with ``fnmatch`` globs.  The
active plan comes from :func:`install_plan` / :func:`fault_plan`, or —
when neither was called — from the ``REPRO_FAULTS`` environment variable
(re-read whenever it changes, so tests can flip it mid-process).

Spec grammar (rules separated by ``;``)::

    REPRO_FAULTS="site_glob:kind[:rate[:times[:param]]][;...]"
    REPRO_FAULTS_SEED=1234

* ``kind`` — ``raise`` | ``delay`` | ``corrupt`` | ``garbage``
* ``rate`` — fraction of *keys* selected, default 1.0; selection hashes
  ``(seed, site, key)`` so one key fails consistently across retries of
  unrelated keys
* ``times`` — injections per (site, key) before the fault clears
  (``0`` = unlimited), default 1: the transient-fault model, absorbed by
  one retry
* ``param`` — seconds for ``delay`` (default 0.05), flipped bytes for
  ``corrupt`` (default 8)

Every firing increments ``faults_injected{site=,kind=}`` in
:mod:`repro.obs.metrics`, logs a ``fault_injected`` event, and drops a
structured instant marker into the :mod:`repro.obs.flight` ring so chaos
runs are replayable span-by-span.
"""

from __future__ import annotations

import contextlib
import fnmatch
import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import ReproError
from ..obs import flight as obs_flight
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics

#: environment variable carrying the fault-plan spec
FAULTS_ENV = "REPRO_FAULTS"
#: environment variable seeding the deterministic key selection
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

KINDS = ("raise", "delay", "corrupt", "garbage")


class InjectedFault(ReproError):
    """The error raised by a ``raise``-kind fault (library-catchable)."""

    def __init__(self, site: str, key: str, attempt: int) -> None:
        super().__init__(
            f"injected fault at {site!r} (key={key!r}, attempt={attempt})"
        )
        self.site = site
        self.key = key
        self.attempt = attempt


@dataclass(frozen=True)
class FaultRule:
    """One site-glob -> fault mapping inside a :class:`FaultPlan`."""

    site: str
    kind: str
    rate: float = 1.0
    #: injections per (site, key) before the fault clears; 0 = unlimited
    times: int = 1
    #: delay seconds / corrupted byte count, depending on ``kind``
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; one of {', '.join(KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ReproError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.times < 0:
            raise ReproError(f"fault times must be >= 0, got {self.times}")

    def matches(self, site: str) -> bool:
        return fnmatch.fnmatchcase(site, self.site)


def _selects(seed: int, site: str, key: str, rate: float) -> bool:
    """Deterministic key selection: hash(seed, site, key) < rate."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    blob = f"{seed}\0{site}\0{key}".encode("utf-8")
    frac = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2**64
    return frac < rate


class FaultPlan:
    """An ordered rule list plus the per-(site, key) firing ledger.

    The first matching rule wins per ``inject``/``maybe_*`` call of its
    kind class (``raise``/``delay`` fire from :func:`inject`; ``corrupt``
    and ``garbage`` fire from their dedicated hooks, so a plan can layer
    a delay and a corruption on one site).
    """

    def __init__(self, rules: Iterable[FaultRule], *, seed: int = 0) -> None:
        self.rules = tuple(rules)
        self.seed = seed
        self._fired: dict[tuple[str, str, int], int] = {}
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        rules: list[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) < 2:
                raise ReproError(
                    f"bad fault rule {chunk!r}: want site:kind[:rate[:times[:param]]]"
                )
            site, kind = parts[0].strip(), parts[1].strip()
            try:
                rate = float(parts[2]) if len(parts) > 2 and parts[2] else 1.0
                times = int(parts[3]) if len(parts) > 3 and parts[3] else 1
                param = float(parts[4]) if len(parts) > 4 and parts[4] else 0.0
            except ValueError as exc:
                raise ReproError(f"bad fault rule {chunk!r}: {exc}") from None
            rules.append(FaultRule(site, kind, rate=rate, times=times, param=param))
        return cls(rules, seed=seed)

    # -- bookkeeping ---------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Injections so far, per ``site/kind``."""
        with self._lock:
            return dict(self._counts)

    def total_injected(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def reset(self) -> None:
        """Forget every firing (a fresh chaos round replays identically)."""
        with self._lock:
            self._fired.clear()
            self._counts.clear()

    def _fire(self, rule: FaultRule, site: str, key: str) -> int | None:
        """Attempt number if the rule fires for (site, key), else None."""
        if not _selects(self.seed, site, key, rule.rate):
            return None
        ledger_key = (site, key, id(rule))
        with self._lock:
            attempt = self._fired.get(ledger_key, 0) + 1
            if rule.times and attempt > rule.times:
                return None
            self._fired[ledger_key] = attempt
            stat = f"{site}/{rule.kind}"
            self._counts[stat] = self._counts.get(stat, 0) + 1
        obs_metrics.counter("faults_injected", site=site, kind=rule.kind).inc()
        obs_log.info(
            "fault_injected", logger="repro.resilience.faults",
            site=site, key=key, kind=rule.kind, attempt=attempt,
        )
        # structured marker in the flight ring: a chaos run's injections
        # replay right next to the spans they perturbed
        obs_flight.instant(
            "fault_injected", cat="fault",
            site=site, key=key, kind=rule.kind, attempt=attempt,
        )
        return attempt

    # -- the three hook flavors ---------------------------------------------

    def inject(self, site: str, key: str = "") -> None:
        """Fire any matching ``raise``/``delay`` rule for this call."""
        for rule in self.rules:
            if rule.kind not in ("raise", "delay") or not rule.matches(site):
                continue
            attempt = self._fire(rule, site, key)
            if attempt is None:
                continue
            if rule.kind == "delay":
                time.sleep(rule.param if rule.param > 0 else 0.05)
            else:
                raise InjectedFault(site, key, attempt)

    def corrupt(self, site: str, data: bytes, key: str = "") -> bytes:
        """Deterministically flip bytes when a ``corrupt`` rule fires."""
        for rule in self.rules:
            if rule.kind != "corrupt" or not rule.matches(site):
                continue
            if self._fire(rule, site, key) is None:
                continue
            n = max(1, int(rule.param) or 8)
            out = bytearray(data)
            if not out:
                return b"\xff" * n
            digest = hashlib.sha256(
                f"{self.seed}\0{site}\0{key}".encode("utf-8")).digest()
            for i in range(min(n, len(out))):
                pos = int.from_bytes(
                    digest[(2 * i) % 32: (2 * i) % 32 + 2], "big") % len(out)
                out[pos] ^= 0xFF
            return bytes(out)
        return data

    def garbage(self, site: str, value: Any, key: str = "") -> Any:
        """Replace ``value`` with type-confusing garbage when fired."""
        for rule in self.rules:
            if rule.kind != "garbage" or not rule.matches(site):
                continue
            if self._fire(rule, site, key) is None:
                continue
            # not a dict, not JSON-round-trippable to the original: the
            # classic "cache returned nonsense" failure shape
            return ["\x00garbage", site, key]
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan seed={self.seed} rules={len(self.rules)}>"


#: a plan that never fires — the default when no faults are configured
NULL_PLAN = FaultPlan(())


# ---------------------------------------------------------------------------
# The active plan (install > env > null)
# ---------------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None
_ENV_CACHE: tuple[str, str, FaultPlan] | None = None
_STATE_LOCK = threading.Lock()


def install_plan(plan: FaultPlan | None) -> None:
    """Make ``plan`` the process-wide active plan (None uninstalls)."""
    global _ACTIVE
    with _STATE_LOCK:
        _ACTIVE = plan


@contextlib.contextmanager
def fault_plan(plan: "FaultPlan | str | None", *, seed: int = 0):
    """Scoped :func:`install_plan` (a spec string is parsed first).

    Unlike ``install_plan(None)``, ``fault_plan(None)`` installs the
    *null* plan: inside the block no fault fires, even when
    ``REPRO_FAULTS`` is set.  That is how chaos scenarios take a
    fault-free baseline while the CI job keeps the env plan exported.
    """
    if plan is None:
        plan = NULL_PLAN
    elif isinstance(plan, str):
        plan = FaultPlan.from_spec(plan, seed=seed)
    global _ACTIVE
    with _STATE_LOCK:
        prev = _ACTIVE
        _ACTIVE = plan
    try:
        yield plan
    finally:
        with _STATE_LOCK:
            _ACTIVE = prev


def _env_plan() -> FaultPlan:
    """The plan described by ``REPRO_FAULTS`` (cached per env value)."""
    global _ENV_CACHE
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return NULL_PLAN
    seed_text = os.environ.get(FAULTS_SEED_ENV, "").strip()
    with _STATE_LOCK:
        if _ENV_CACHE is not None and _ENV_CACHE[:2] == (spec, seed_text):
            return _ENV_CACHE[2]
    try:
        seed = int(seed_text) if seed_text else 0
    except ValueError:
        seed = 0
    try:
        plan = FaultPlan.from_spec(spec, seed=seed)
    except ReproError as exc:
        # a broken env spec must never take the library down; warn once
        obs_log.warning(
            "fault_spec_invalid", logger="repro.resilience.faults",
            spec=spec, error=str(exc),
        )
        plan = NULL_PLAN
    with _STATE_LOCK:
        _ENV_CACHE = (spec, seed_text, plan)
    return plan


def active_plan() -> FaultPlan:
    """Installed plan > ``REPRO_FAULTS`` plan > the never-firing null plan."""
    with _STATE_LOCK:
        if _ACTIVE is not None:
            return _ACTIVE
    return _env_plan()


# ---------------------------------------------------------------------------
# Module-level hooks (what instrumented sites call)
# ---------------------------------------------------------------------------


def inject(site: str, key: str = "") -> None:
    """Raise/delay here if the active plan says so; no-op otherwise."""
    plan = active_plan()
    if plan.rules:
        plan.inject(site, key)


def maybe_corrupt(site: str, data: bytes, key: str = "") -> bytes:
    """Corrupted ``data`` if a corrupt rule fires, else ``data`` unchanged."""
    plan = active_plan()
    if plan.rules:
        return plan.corrupt(site, data, key)
    return data


def maybe_garbage(site: str, value: Any, key: str = "") -> Any:
    """Garbage replacement for ``value`` if a garbage rule fires."""
    plan = active_plan()
    if plan.rules:
        return plan.garbage(site, value, key)
    return value
