"""Graph executors: functional (exact) and cost (cycles per backend)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..backends import Backend, get_backend
from ..conv.ref import conv2d_ref
from ..errors import ReproError
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience import faults as res_faults
from ..quant.ranges import scheme_qrange
from ..quant.schemes import dequantize_linear, quantize_linear, requantize
from ..types import ConvSpec, Layout
from .graph import Graph, Op


# ---------------------------------------------------------------------------
# Functional execution (NCHW, exact integer conv cores)
# ---------------------------------------------------------------------------


def execute_graph(
    graph: Graph,
    x: np.ndarray,
    weights: dict[str, np.ndarray],
    *,
    weight_scales: dict[str, float] | None = None,
    biases: dict[str, np.ndarray] | None = None,
) -> np.ndarray:
    """Run the pipeline on float input, exactly as a runtime would.

    ``weights[spec.name]`` holds each conv's float OIHW weights; they are
    quantized per-tensor at the conv's bit width.  Fused and unfused graphs
    produce (numerically) the same result — a property the tests assert —
    because fusion only moves element-wise math into the conv epilogue.
    """
    weight_scales = weight_scales or {}
    biases = biases or {}
    cur: np.ndarray = np.asarray(x, dtype=np.float64)
    cur_q: np.ndarray | None = None  # integer activation + its scale
    cur_scale: float = 1.0
    cur_bits: int = 8

    # root span for the whole run: per-op spans below become its
    # children, so one executor invocation is one subtree in the flight
    # recorder (the serving layer's future per-request unit)
    with obs_trace.span("executor.graph", cat="executor", ops=len(graph)):
        cur, cur_q, cur_scale, cur_bits = _run_ops(
            graph, cur, cur_q, cur_scale, cur_bits,
            weights, weight_scales, biases)
    return cur


def _run_ops(
    graph: Graph,
    cur: np.ndarray,
    cur_q: "np.ndarray | None",
    cur_scale: float,
    cur_bits: int,
    weights: dict[str, np.ndarray],
    weight_scales: dict[str, float],
    biases: dict[str, np.ndarray],
) -> "tuple[np.ndarray, np.ndarray | None, float, int]":
    for op in graph:
        t_op = time.perf_counter()
        with obs_trace.span(f"op.{op.kind}", cat="executor"):
            if op.kind == "quantize":
                bits = op.attrs["bits"]
                scale = op.attrs["scale"]
                cur_q = quantize_linear(cur, scale, scheme_qrange(bits))
                cur_scale, cur_bits = scale, bits
            elif op.kind == "conv":
                if cur_q is None:
                    raise ReproError("conv reached without a quantize stage")
                spec: ConvSpec = op.attrs["spec"]
                bits = op.attrs["bits"]
                w_float = weights[spec.name]
                w_scale = weight_scales.get(
                    spec.name,
                    float(np.max(np.abs(w_float))) / scheme_qrange(bits).max_abs
                    or 1.0,
                )
                w_q = quantize_linear(w_float, w_scale, scheme_qrange(bits))
                acc = conv2d_ref(spec, cur_q.astype(np.int64),
                                 w_q.astype(np.int64), layout=Layout.NCHW)
                bias = biases.get(spec.name)
                if bias is not None:
                    acc = acc + np.asarray(bias, dtype=np.int64)[None, :, None, None]
                acc_scale = cur_scale * w_scale
                epilogue = op.attrs.get("epilogue", "requant")
                if epilogue in ("requant", "requant_relu"):
                    out_scale = op.attrs.get("out_scale", acc_scale * 16)
                    q = requantize(acc, acc_scale / out_scale, scheme_qrange(bits))
                    if epilogue == "requant_relu":
                        q = np.clip(q, 0, scheme_qrange(bits).qmax)
                    cur_q, cur_scale, cur_bits = q, out_scale, bits
                    cur = dequantize_linear(q, out_scale)
                elif epilogue == "dequant":
                    cur = acc.astype(np.float64) * acc_scale
                    cur_q = None
                else:
                    raise ReproError(f"unknown conv epilogue {epilogue!r}")
            elif op.kind == "dequantize":
                if cur_q is None:
                    raise ReproError("dequantize without a quantized value")
                cur = dequantize_linear(cur_q, cur_scale)
                cur_q = None
            elif op.kind == "relu":
                if cur_q is not None:
                    cur_q = np.maximum(cur_q, 0)
                    cur = dequantize_linear(cur_q, cur_scale)
                else:
                    cur = np.maximum(cur, 0.0)
            else:  # pragma: no cover - Op validates kinds
                raise ReproError(f"unknown op {op.kind!r}")
        # per-op wall time: ops here run real integer conv cores, so the
        # accounting cost is noise relative to the work measured
        obs_metrics.counter("executor_ops", kind=op.kind).inc()
        obs_metrics.histogram(
            "executor_op_seconds", kind=op.kind
        ).observe(time.perf_counter() - t_op)
    return cur, cur_q, cur_scale, cur_bits


# ---------------------------------------------------------------------------
# Cost estimation per backend
# ---------------------------------------------------------------------------


@dataclass
class GraphCostReport:
    """Cycle totals per op for one backend."""

    backend: str
    op_cycles: list[tuple[str, float]] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(c for _, c in self.op_cycles)

    @property
    def kernel_launches(self) -> int:
        return len(self.op_cycles)


def _prewarm_conv_costs(graph: Graph, backend: Backend, jobs: int | None) -> None:
    """Fan independent per-conv autotune/pricing work over the backend's
    :meth:`~repro.backends.Backend.prewarm` pool so the serial pricing
    loop below only reads memo caches.  Purely a warm-up: results are
    re-read from the caches in graph order, so the report is identical for
    any worker count (including zero prewarming)."""
    work = []
    for op in graph:
        if op.kind != "conv":
            continue
        spec: ConvSpec = op.attrs["spec"]
        work.append((spec, op.attrs["bits"], op.attrs.get("epilogue", "requant")))
    backend.prewarm(work, jobs=jobs)


def _price_conv_with_fallback(
    be: Backend, spec: ConvSpec, bits: int, epilogue: str
):
    """Price one conv; a backend failure degrades to the ``ref`` backend.

    A pricing failure on one layer (a cost-model bug, a quarantined-empty
    autotune sweep, an injected fault at the ``executor.price_conv``
    site) must not take down the whole graph report: the layer is
    re-priced on the pure op-count ``ref`` backend with a warning and a
    ``resilience_fallbacks`` counter bump.  The ``ref`` backend itself
    has no fallback — its failures (and programming errors, which are
    not :class:`ReproError`) propagate.
    """
    try:
        res_faults.inject(
            "executor.price_conv", key=f"{be.name}:{spec.name}:{bits}")
        return be.price_conv(spec, bits, epilogue=epilogue)
    except ReproError as exc:
        if be.name == "ref":
            raise
        obs_metrics.counter(
            "resilience_fallbacks", backend=be.name, op="conv").inc()
        obs_log.warning(
            "price_conv_fallback", logger="repro.runtime.executor",
            backend=be.name, layer=spec.name, bits=bits,
            error=type(exc).__name__,
        )
        return get_backend("ref").price_conv(spec, bits, epilogue=epilogue)


def estimate_graph_cycles(
    graph: Graph, backend: "str | Backend" = "gpu", *, jobs: int | None = None
) -> GraphCostReport:
    """Price every op of the pipeline on a registered backend.

    Convolutions are priced through :meth:`Backend.price_conv` and charged
    their :attr:`~repro.backends.ConvPrice.graph_cycles` (the conv total
    minus any quantize/dequantize passes the backend's layer price folds
    in — this graph carries those ops explicitly); element-wise ops go
    through :meth:`Backend.price_elementwise`.  ``backend`` is a
    registered name (``repro.backends.available_backends()``) or a
    :class:`Backend` instance.  ``jobs`` bounds the parallel prewarm of
    the per-conv costs (``REPRO_JOBS`` applies when unset); the report
    itself is assembled serially and is identical for any worker count.

    Per-conv pricing degrades gracefully: a failing backend price falls
    back to the ``ref`` backend (see :func:`_price_conv_with_fallback`)
    instead of crashing the report.
    """
    be = get_backend(backend)
    with obs_trace.span("executor.prewarm", cat="executor", backend=be.name):
        _prewarm_conv_costs(graph, be, jobs)
    report = GraphCostReport(backend=be.name)
    # the element-wise ops act on the most recent conv's output tensor
    last_elems = 0
    for op in graph:
        if op.kind == "conv":
            spec: ConvSpec = op.attrs["spec"]
            bits = op.attrs["bits"]
            last_elems = spec.output_elems
            price = _price_conv_with_fallback(
                be, spec, bits, op.attrs.get("epilogue", "requant")
            )
            report.op_cycles.append((repr(op), price.graph_cycles))
        else:
            report.op_cycles.append(
                (op.kind, be.price_elementwise(op.kind, last_elems))
            )
    obs_metrics.counter("executor_graphs_priced", backend=be.name).inc()
    return report
