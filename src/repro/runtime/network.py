"""End-to-end quantized networks: many conv pipelines chained.

The paper evaluates layers in isolation; its conclusion names end-to-end
integration as future work ("we would like to integrate our low-bit
convolution optimizations into deep learning frameworks ... to enable
end-to-end optimization").  This module provides that layer: a network is
an ordered list of conv stages (each the Sec. 4.4 pipeline around one
convolution); it can be

* lowered with the fusion passes stage by stage,
* priced end-to-end on either simulated backend, and
* executed functionally on scaled-down shapes for validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backends import Backend, get_backend
from ..errors import ReproError, ShapeError
from ..types import ConvSpec
from .executor import GraphCostReport, estimate_graph_cycles, execute_graph
from .graph import Graph, conv_pipeline
from .passes import FusionReport, apply_all_fusions


@dataclass(frozen=True)
class NetworkStage:
    """One convolution stage and its element-wise pipeline."""

    graph: Graph

    @property
    def spec(self) -> ConvSpec:
        convs = self.graph.convs()
        if len(convs) != 1:
            raise ReproError("a network stage holds exactly one conv")
        return convs[0].attrs["spec"]


@dataclass(frozen=True)
class Network:
    """A feed-forward chain of conv stages (shapes must connect)."""

    name: str
    stages: tuple[NetworkStage, ...]

    def __post_init__(self) -> None:
        prev: ConvSpec | None = None
        for stage in self.stages:
            spec = stage.spec
            if prev is not None:
                if spec.in_channels != prev.out_channels:
                    raise ShapeError(
                        f"{self.name}: {prev.name} emits {prev.out_channels} "
                        f"channels but {spec.name} expects {spec.in_channels}"
                    )
                if (spec.height, spec.width) != (prev.out_height, prev.out_width):
                    raise ShapeError(
                        f"{self.name}: spatial mismatch {prev.name} -> {spec.name}"
                    )
            prev = spec

    @property
    def specs(self) -> list[ConvSpec]:
        return [s.spec for s in self.stages]

    @property
    def total_macs(self) -> int:
        return sum(s.spec.macs for s in self.stages)

    def fuse(self) -> tuple["Network", FusionReport]:
        """Apply the Sec. 4.4 fusion passes to every stage."""
        report = FusionReport()
        stages = []
        for stage in self.stages:
            g, r = apply_all_fusions(stage.graph)
            report = report.merge(r)
            stages.append(NetworkStage(g))
        return Network(self.name, tuple(stages)), report


def build_network(
    name: str,
    specs: list[ConvSpec],
    bits: int,
    *,
    relu: bool = True,
) -> Network:
    """A network from connected conv specs, each wrapped in the unfused
    quantize/conv/dequantize(/quantize/relu/dequantize) pipeline."""
    stages = tuple(
        NetworkStage(conv_pipeline(spec, bits, with_relu=relu)) for spec in specs
    )
    return Network(name, stages)


def build_chain(
    name: str,
    in_channels: int,
    plan: list[tuple[int, int, int]],
    *,
    height: int,
    width: int,
    batch: int = 1,
    bits: int = 8,
    relu: bool = True,
) -> Network:
    """Convenience: a small CNN from (out_channels, kernel, stride) rows."""
    specs: list[ConvSpec] = []
    cin, h, w = in_channels, height, width
    for i, (cout, k, s) in enumerate(plan):
        spec = ConvSpec(
            f"{name}_conv{i + 1}", in_channels=cin, out_channels=cout,
            height=h, width=w, kernel=(k, k), stride=(s, s),
            padding=(k // 2, k // 2), batch=batch,
        )
        specs.append(spec)
        cin, h, w = cout, spec.out_height, spec.out_width
    return build_network(name, specs, bits, relu=relu)


def calibrate_network(
    net: Network,
    x: np.ndarray,
    weights: dict[str, np.ndarray],
) -> Network:
    """Post-training calibration: set every stage's quantization scales
    from the ranges a float forward pass actually produces.

    This is what real deployments do before running the paper's kernels
    (Sec. 5.1's quantization scheme assumes calibrated scales); without it
    low-bit pipelines clip catastrophically.  Returns a new network with
    per-stage ``act_scale``/``out_scale`` baked into the pipelines.
    """
    from ..conv.ref import conv2d_float
    from ..quant.ranges import scheme_qrange

    cur = np.asarray(x, dtype=np.float64)
    stages: list[NetworkStage] = []
    for stage in net.stages:
        spec = stage.spec
        conv_op = stage.graph.convs()[0]
        bits = conv_op.attrs["bits"]
        has_relu = any(op.kind == "relu" for op in stage.graph) or (
            conv_op.attrs.get("epilogue") == "requant_relu"
        )
        edge = scheme_qrange(bits).max_abs
        act_scale = max(float(np.max(np.abs(cur))), 1e-12) / edge
        conv_out = conv2d_float(spec, cur, weights[spec.name])
        out_scale = max(float(np.max(np.abs(conv_out))), 1e-12) / edge
        stages.append(
            NetworkStage(
                conv_pipeline(spec, bits, with_relu=has_relu,
                              act_scale=act_scale, out_scale=out_scale)
            )
        )
        cur = np.maximum(conv_out, 0.0) if has_relu else conv_out
    return Network(net.name, tuple(stages))


# ---------------------------------------------------------------------------
# Execution / pricing
# ---------------------------------------------------------------------------


@dataclass
class NetworkCostReport:
    """End-to-end cost: per-stage reports plus totals."""

    backend: str
    stage_reports: list[GraphCostReport] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(r.total_cycles for r in self.stage_reports)

    @property
    def kernel_launches(self) -> int:
        return sum(r.kernel_launches for r in self.stage_reports)

    def milliseconds(self) -> float:
        # the clock comes from the backend's machine description, never an
        # inline literal that could drift from the cost model's constants
        return self.total_cycles / get_backend(self.backend).clock_hz * 1e3


def estimate_network_cycles(
    net: Network, backend: "str | Backend" = "gpu"
) -> NetworkCostReport:
    be = get_backend(backend)
    report = NetworkCostReport(backend=be.name)
    for stage in net.stages:
        report.stage_reports.append(estimate_graph_cycles(stage.graph, be))
    return report


def execute_network(
    net: Network,
    x: np.ndarray,
    weights: dict[str, np.ndarray],
    **kwargs,
) -> np.ndarray:
    """Functional end-to-end execution (float in, float out)."""
    cur = np.asarray(x, dtype=np.float64)
    for stage in net.stages:
        cur = execute_graph(stage.graph, cur, weights, **kwargs)
    return cur


def estimate_model_cycles(
    specs: list[ConvSpec],
    bits: int,
    backend: "str | Backend" = "arm",
    *,
    fused: bool = True,
    relu: bool = True,
) -> NetworkCostReport:
    """Price a whole model's conv layers (not necessarily a chain).

    Real networks (ResNet's residual blocks, DenseNet's concatenations)
    aren't simple chains; for *cost* purposes each conv pipeline prices
    independently, so this sums per-layer pipelines — the way the paper's
    per-layer evaluation composes into a network estimate.
    """
    be = get_backend(backend)
    report = NetworkCostReport(backend=be.name)
    for spec in specs:
        g = conv_pipeline(spec, bits, with_relu=relu)
        if fused:
            g, _ = apply_all_fusions(g)
        report.stage_reports.append(estimate_graph_cycles(g, be))
    return report


def random_weights(net: Network, rng: np.random.Generator) -> dict[str, np.ndarray]:
    """He-initialized float weights for every stage (for demos/tests)."""
    out = {}
    for spec in net.specs:
        fan_in = spec.in_channels * spec.kernel[0] * spec.kernel[1]
        out[spec.name] = rng.normal(
            scale=(2.0 / fan_in) ** 0.5, size=spec.weight_shape()
        )
    return out
