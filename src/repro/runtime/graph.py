"""Linear op-graph IR for quantized conv pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from ..errors import ReproError
from ..types import ConvSpec

#: op kinds the IR knows; conv carries fusion state in its attrs
OP_KINDS = ("quantize", "conv", "dequantize", "relu")


@dataclass(frozen=True)
class Op:
    """One pipeline stage.

    ``attrs`` by kind:

    * ``quantize``: ``bits``, ``scale``
    * ``conv``: ``spec`` (ConvSpec), ``bits``, ``epilogue``
      (``"requant"``/``"requant_relu"``/``"dequant"``), plus optional
      backend payloads (weights/bias)
    * ``dequantize``: ``scale``
    * ``relu``: —
    """

    kind: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ReproError(f"unknown op kind {self.kind!r}")
        if self.kind == "conv":
            spec = self.attrs.get("spec")
            if not isinstance(spec, ConvSpec):
                raise ReproError("conv op requires a ConvSpec in attrs['spec']")

    def with_attrs(self, **updates: Any) -> "Op":
        new = dict(self.attrs)
        new.update(updates)
        return replace(self, attrs=new)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "conv":
            return f"conv[{self.attrs['spec'].name}, {self.attrs.get('epilogue', 'requant')}]"
        return self.kind


@dataclass(frozen=True)
class Graph:
    """A linear pipeline of ops."""

    ops: tuple[Op, ...]

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def kernel_launches(self) -> int:
        """Each remaining op is one kernel on the GPU backend."""
        return len(self.ops)

    def convs(self) -> list[Op]:
        return [op for op in self.ops if op.kind == "conv"]


def conv_pipeline(
    spec: ConvSpec,
    bits: int,
    *,
    with_relu: bool = True,
    act_scale: float = 0.05,
    out_scale: float = 0.1,
) -> Graph:
    """The unfused Sec. 4.4 pipeline around one convolution.

    quantize -> conv(+requant) -> dequantize [-> quantize -> relu ->
    dequantize when ``with_relu``].
    """
    ops: list[Op] = [
        Op("quantize", {"bits": bits, "scale": act_scale}),
        Op("conv", {"spec": spec, "bits": bits, "epilogue": "requant",
                    "out_scale": out_scale}),
        Op("dequantize", {"scale": out_scale}),
    ]
    if with_relu:
        # the re-quantize after dequantize reuses the conv's output scale,
        # so fusing it away is numerically free (tests assert exactness)
        ops += [
            Op("quantize", {"bits": bits, "scale": out_scale}),
            Op("relu", {}),
            Op("dequantize", {"scale": out_scale}),
        ]
    return Graph(tuple(ops))
