"""Minimal QNN runtime: a layer-pipeline IR, fusion passes, executors.

The paper's Sec. 4.4 pipeline — ``quantize -> conv(+requant) -> dequantize
-> quantize -> ReLU -> dequantize`` — is represented as a linear op graph;
the fusion passes rewrite it exactly the way the paper's two fusions do,
and the executors run it functionally (bit-exact integer conv cores) or
price it on either simulated architecture.
"""

from .graph import Graph, Op, conv_pipeline
from .passes import fuse_conv_dequant, fuse_conv_relu, apply_all_fusions, FusionReport
from .executor import execute_graph, estimate_graph_cycles, GraphCostReport
from .network import (
    Network,
    NetworkStage,
    NetworkCostReport,
    build_network,
    build_chain,
    calibrate_network,
    estimate_network_cycles,
    execute_network,
    random_weights,
)

__all__ = [
    "Graph",
    "Op",
    "conv_pipeline",
    "fuse_conv_dequant",
    "fuse_conv_relu",
    "apply_all_fusions",
    "FusionReport",
    "execute_graph",
    "estimate_graph_cycles",
    "GraphCostReport",
    "Network",
    "NetworkStage",
    "NetworkCostReport",
    "build_network",
    "build_chain",
    "calibrate_network",
    "estimate_network_cycles",
    "execute_network",
    "random_weights",
]
