"""Graph rewrite passes implementing the Sec. 4.4 quantization fusions."""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import Graph, Op


@dataclass
class FusionReport:
    """What a fusion pass did (feeds the Fig. 12 accounting)."""

    conv_dequant_fused: int = 0
    conv_relu_fused: int = 0
    ops_eliminated: int = 0

    def merge(self, other: "FusionReport") -> "FusionReport":
        return FusionReport(
            conv_dequant_fused=self.conv_dequant_fused + other.conv_dequant_fused,
            conv_relu_fused=self.conv_relu_fused + other.conv_relu_fused,
            ops_eliminated=self.ops_eliminated + other.ops_eliminated,
        )


def fuse_conv_relu(graph: Graph) -> tuple[Graph, FusionReport]:
    """Fuse ``conv -> dequantize -> quantize -> relu`` into the conv.

    "We can fuse convolution and ReLU kernels by changing the truncated
    range of re-quantization in convolution kernel" — the dequantize /
    quantize pair between them vanishes entirely.
    Run this *before* conv+dequant fusion: it matches the longer pattern.
    """
    ops = list(graph.ops)
    out: list[Op] = []
    report = FusionReport()
    i = 0
    while i < len(ops):
        op = ops[i]
        if (
            op.kind == "conv"
            and op.attrs.get("epilogue") == "requant"
            and i + 3 < len(ops)
            and ops[i + 1].kind == "dequantize"
            and ops[i + 2].kind == "quantize"
            and ops[i + 3].kind == "relu"
        ):
            out.append(op.with_attrs(epilogue="requant_relu"))
            report.conv_relu_fused += 1
            report.ops_eliminated += 3
            i += 4
            continue
        out.append(op)
        i += 1
    return Graph(tuple(out)), report


def fuse_conv_dequant(graph: Graph) -> tuple[Graph, FusionReport]:
    """Fuse ``conv -> dequantize`` into a fp32-emitting conv epilogue.

    "We combine the calculation process of convolution and dequantization,
    skip storing the intermediate results with int8 data type, and
    directly transform the results from int32 to fp32."
    """
    ops = list(graph.ops)
    out: list[Op] = []
    report = FusionReport()
    i = 0
    while i < len(ops):
        op = ops[i]
        if (
            op.kind == "conv"
            and op.attrs.get("epilogue") == "requant"
            and i + 1 < len(ops)
            and ops[i + 1].kind == "dequantize"
        ):
            out.append(
                op.with_attrs(
                    epilogue="dequant",
                    dequant_scale=ops[i + 1].attrs.get("scale", 1.0),
                )
            )
            report.conv_dequant_fused += 1
            report.ops_eliminated += 1
            i += 2
            continue
        out.append(op)
        i += 1
    return Graph(tuple(out)), report


def apply_all_fusions(graph: Graph) -> tuple[Graph, FusionReport]:
    """conv+ReLU first (longer pattern), then conv+dequant on the rest."""
    g1, r1 = fuse_conv_relu(graph)
    g2, r2 = fuse_conv_dequant(g1)
    return g2, r1.merge(r2)
