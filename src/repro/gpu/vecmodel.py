"""Structure-of-arrays GPU pricing: whole tiling populations in one shot.

The profile-run auto-search (Sec. 5.1) prices tens of thousands of
kernel-template instantiations per network.  :mod:`repro.gpu.pipelinemodel`
prices one candidate per Python call; this module decomposes a
``list[TilingParams]`` into parallel numpy arrays (one int64 column per
template parameter — MTile / NTile / KTile / KStep / warp-grid counts) and
reimplements every term of the scalar model as array expressions, so an
entire population is priced in a handful of numpy kernels.

**Bit-identity is the contract.**  Each array expression performs the same
float64 operations in the same order as its scalar twin (`_compute_cycles`,
`_dram_cycles`, the shared-memory term, `_blocks_per_sm`, occupancy,
launch), element by element.  IEEE-754 float64 arithmetic is deterministic,
so ``kernel_time_batch(...)[i]`` equals ``kernel_time(space[i], ...)`` to
the last bit — the equivalence suite in ``tests/test_gpu_random_tilings.py``
asserts it for every bit width and kernel-kwarg combination, and
:mod:`repro.gpu.autotune` leans on it to keep vectorized sweep winners
identical to the serial baseline.  The scalar path stays as the oracle
(and as the hardened fallback for fault-injected candidates).

Illegal candidates never raise here: :func:`validate_mask` vectorizes
:func:`repro.gpu.tiling.validate_tiling` into a boolean legality mask
(including the "block does not fit on an SM" occupancy check the scalar
path raises for), and cycle lanes whose mask is ``False`` carry garbage
the caller must not read.  Denominators are clamped on those lanes only,
so legal lanes see exactly the scalar arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import TilingError
from ..obs import metrics as obs_metrics
from ..types import GemmShape
from .device import GpuDevice, TU102
from .mma import mma_shape
from .pipelinemodel import _K_ITER_OVERHEAD, _launch_cycles, GpuKernelPerf
from .tiling import TilingParams

#: TilingParams fields, in dataclass order (the SoA column set)
_FIELDS = ("m_tile", "n_tile", "k_tile", "k_step",
           "block_row_warps", "block_col_warps")


def _ceil_div(a, b):
    """Vector ceiling division (non-negative ``a``, positive ``b``)."""
    return -((-a) // b)


@dataclass(frozen=True)
class TilingArrays:
    """A tiling population as parallel int64 columns (structure of arrays).

    Built once per (bits, device) search space and cached by the autotuner;
    ``take`` re-slices it for chunked pricing without touching the original
    ``TilingParams`` objects.
    """

    m_tile: np.ndarray
    n_tile: np.ndarray
    k_tile: np.ndarray
    k_step: np.ndarray
    block_row_warps: np.ndarray
    block_col_warps: np.ndarray

    @classmethod
    def from_params(cls, tilings: Sequence[TilingParams]) -> "TilingArrays":
        return cls(**{
            name: np.array([getattr(t, name) for t in tilings], dtype=np.int64)
            for name in _FIELDS
        })

    def __len__(self) -> int:
        return int(self.m_tile.shape[0])

    def take(self, indices) -> "TilingArrays":
        """The sub-population at ``indices`` (any numpy fancy index)."""
        return TilingArrays(**{
            name: getattr(self, name)[indices] for name in _FIELDS
        })

    def param_at(self, i: int) -> TilingParams:
        """The ``i``-th candidate back as a scalar :class:`TilingParams`."""
        return TilingParams(*(int(getattr(self, name)[i]) for name in _FIELDS))

    # -- derived columns (mirror the TilingParams properties) ---------------

    @property
    def warps_per_block(self) -> np.ndarray:
        return self.block_row_warps * self.block_col_warps

    @property
    def threads_per_block(self) -> np.ndarray:
        return self.warps_per_block * 32

    def smem_bytes(self, bits: int, *, double_buffer: bool = True) -> np.ndarray:
        """A_Tile + B_Tile staging footprint per candidate (int64).

        Matches ``int(tiles * factor)`` of the scalar property: the float
        product is non-negative, so truncation equals ``floor``.
        """
        elem = bits / 8
        tiles = (self.m_tile * self.k_tile + self.k_tile * self.n_tile) * elem
        return np.floor(tiles * (2 if double_buffer else 1)).astype(np.int64)

    def regs_per_thread(self, bits: int) -> np.ndarray:
        """Accumulator + operand + bookkeeping registers per thread.

        Warp-grid denominators are clamped to 1 so illegal lanes (killed by
        :func:`validate_mask` anyway) cannot divide by zero; legal lanes are
        untouched and reproduce the scalar float64 sequence exactly.
        """
        elem = bits / 8
        brw = np.maximum(1, self.block_row_warps)
        bcw = np.maximum(1, self.block_col_warps)
        m_frag = self.m_tile // brw
        n_frag = self.n_tile // bcw
        acc = m_frag * n_frag / 32
        frag = (m_frag + n_frag) * self.k_step * elem / 32 / 4
        return np.floor(acc + 2 * frag).astype(np.int64) + 16


def validate_mask(
    tilings: TilingArrays,
    bits: int,
    *,
    device: GpuDevice = TU102,
    double_buffer: bool = True,
) -> np.ndarray:
    """Boolean legality mask — ``True`` exactly where
    :func:`repro.gpu.tiling.validate_tiling` would *not* raise."""
    mm, nn, kk = mma_shape(bits)
    t = tilings
    brw = np.maximum(1, t.block_row_warps)
    bcw = np.maximum(1, t.block_col_warps)
    m_frag = t.m_tile // brw
    n_frag = t.n_tile // bcw
    rpt = t.regs_per_thread(bits)
    return (
        (t.m_tile > 0) & (t.n_tile > 0) & (t.k_tile > 0) & (t.k_step > 0)
        & (t.block_row_warps > 0) & (t.block_col_warps > 0)
        & (t.m_tile % brw == 0) & (t.n_tile % bcw == 0)
        & (m_frag % mm == 0) & (n_frag % nn == 0)
        & (t.k_tile % np.maximum(1, t.k_step) == 0) & (t.k_step % kk == 0)
        & (t.threads_per_block <= 1024)
        & (t.smem_bytes(bits, double_buffer=double_buffer)
           <= device.max_smem_per_block)
        & (rpt <= 255)
        & (rpt * t.threads_per_block <= device.regs_per_sm)
    )


def _grid_blocks(gemm: GemmShape, t: TilingArrays) -> np.ndarray:
    return (_ceil_div(gemm.m, np.maximum(1, t.m_tile))
            * _ceil_div(gemm.n, np.maximum(1, t.n_tile)))


def _blocks_per_sm(
    t: TilingArrays, bits: int, device: GpuDevice, double_buffer: bool
) -> np.ndarray:
    by_smem = device.smem_per_sm // np.maximum(
        1, t.smem_bytes(bits, double_buffer=double_buffer))
    by_threads = device.max_threads_per_sm // np.maximum(1, t.threads_per_block)
    by_regs = device.regs_per_sm // np.maximum(
        1, t.regs_per_thread(bits) * t.threads_per_block)
    return np.maximum(0, np.minimum(
        np.minimum(by_smem, by_threads),
        np.minimum(by_regs, device.max_blocks_per_sm),
    ))


def _compute_cycles(
    gemm: GemmShape,
    bits: int,
    t: TilingArrays,
    device: GpuDevice,
    *,
    tensor_core: bool,
    base_efficiency: float,
    split_k: int,
    occupancy,
) -> np.ndarray:
    k_tile = np.maximum(1, t.k_tile)
    k_pad = _ceil_div(gemm.k, k_tile) * k_tile
    k_pad_block = _ceil_div(_ceil_div(k_pad, split_k), k_tile) * k_tile
    block_macs = t.m_tile * t.n_tile * k_pad_block
    rate = device.mac_rate(bits, tensor_core=tensor_core)
    eff = base_efficiency * (0.35 + 0.65 * occupancy)
    k_iters = _ceil_div(k_pad_block, k_tile)
    block_cycles = block_macs / (rate * eff) + k_iters * _K_ITER_OVERHEAD
    blocks = _grid_blocks(gemm, t) * split_k
    return _ceil_div(blocks, device.sm_count) * block_cycles


def _dram_cycles(
    gemm: GemmShape,
    bits: int,
    t: TilingArrays,
    device: GpuDevice,
    *,
    coalesced: bool,
    in_place_epilogue: bool,
    out_elem_bytes: float,
    split_k: int,
) -> np.ndarray:
    elem = bits / 8
    m_blocks = _ceil_div(gemm.m, np.maximum(1, t.m_tile))
    n_blocks = _ceil_div(gemm.n, np.maximum(1, t.n_tile))
    a_bytes_once = gemm.m * gemm.k * elem
    b_bytes_once = gemm.k * gemm.n * elem
    a_rereads = np.maximum(0, n_blocks - 1) * a_bytes_once
    b_rereads = np.maximum(0, m_blocks - 1) * b_bytes_once
    l2_speedup = 3.0
    a_reread_cost = a_rereads / (l2_speedup if a_bytes_once <= device.l2_bytes else 1.0)
    b_reread_cost = b_rereads / (l2_speedup if b_bytes_once <= device.l2_bytes else 1.0)
    out_bytes = gemm.m * gemm.n * (out_elem_bytes if in_place_epilogue else 4.0)
    if split_k > 1:
        base_blocks = _grid_blocks(gemm, t)
        partial = base_blocks * split_k * t.m_tile * t.n_tile * 4.0
        out_bytes = out_bytes + 2.0 * partial
    transaction_derate = 1.0 if coalesced else 4.0
    dram_bytes = (a_bytes_once + b_bytes_once + a_reread_cost
                  + b_reread_cost + out_bytes)
    return dram_bytes * transaction_derate / device.dram_bytes_per_cycle


def kernel_lower_bound_batch(
    gemm: GemmShape,
    bits: int,
    tilings: TilingArrays,
    *,
    device: GpuDevice = TU102,
    tensor_core: bool = True,
    double_buffer: bool = True,
    reorder_smem: bool = True,
    coalesced: bool = True,
    in_place_epilogue: bool = True,
    out_elem_bytes: float = 1.0,
    base_efficiency: float = 0.55,
    split_k: int = 1,
) -> np.ndarray:
    """Per-candidate admissible lower bounds (float64 vector).

    Element ``i`` is bit-identical to
    :func:`repro.gpu.pipelinemodel.kernel_lower_bound` on candidate ``i``;
    the whole sweep's bound pass collapses to one call.
    """
    del reorder_smem  # smem term is lower-bounded by 0, as in the scalar
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        compute = _compute_cycles(
            gemm, bits, tilings, device,
            tensor_core=tensor_core, base_efficiency=base_efficiency,
            split_k=split_k, occupancy=1.0,
        )
        dram = _dram_cycles(
            gemm, bits, tilings, device,
            coalesced=coalesced, in_place_epilogue=in_place_epilogue,
            out_elem_bytes=out_elem_bytes, split_k=split_k,
        )
        body = np.maximum(compute, dram) if double_buffer else compute + dram
    return body + _launch_cycles(device, split_k)


@dataclass(frozen=True)
class BatchKernelPerf:
    """Cycle breakdowns for a whole tiling population (SoA mirror of
    :class:`~repro.gpu.pipelinemodel.GpuKernelPerf`).

    ``legal`` marks the candidates the scalar path would price without
    raising; cycle lanes where it is ``False`` are undefined and must not
    be read.  :meth:`perf_at` reconstitutes one lane as a scalar
    :class:`GpuKernelPerf` that compares equal (``==``, bit-for-bit) to
    the scalar model's result.
    """

    gemm: GemmShape
    bits: int
    tilings: TilingArrays
    compute_cycles: np.ndarray
    dram_cycles: np.ndarray
    smem_cycles: np.ndarray
    launch_cycles: float
    blocks: np.ndarray
    blocks_per_sm: np.ndarray
    occupancy: np.ndarray
    overlapped: bool
    legal: np.ndarray

    def __len__(self) -> int:
        return len(self.tilings)

    @property
    def total_cycles(self) -> np.ndarray:
        if self.overlapped:
            body = np.maximum(
                np.maximum(self.compute_cycles, self.dram_cycles),
                self.smem_cycles,
            )
        else:
            body = self.compute_cycles + self.dram_cycles + 0.5 * self.smem_cycles
        return body + self.launch_cycles

    def perf_at(self, i: int) -> GpuKernelPerf:
        if not bool(self.legal[i]):
            raise TilingError(
                f"{self.tilings.param_at(i).describe()}: illegal candidate "
                f"lane has no defined cycle breakdown"
            )
        return GpuKernelPerf(
            gemm=self.gemm,
            tiling=self.tilings.param_at(i),
            bits=self.bits,
            compute_cycles=float(self.compute_cycles[i]),
            dram_cycles=float(self.dram_cycles[i]),
            smem_cycles=float(self.smem_cycles[i]),
            launch_cycles=float(self.launch_cycles),
            blocks=int(self.blocks[i]),
            blocks_per_sm=int(self.blocks_per_sm[i]),
            occupancy=float(self.occupancy[i]),
            overlapped=self.overlapped,
        )


def kernel_time_batch(
    gemm: GemmShape,
    bits: int,
    tilings: TilingArrays,
    *,
    device: GpuDevice = TU102,
    tensor_core: bool = True,
    double_buffer: bool = True,
    reorder_smem: bool = True,
    coalesced: bool = True,
    in_place_epilogue: bool = True,
    out_elem_bytes: float = 1.0,
    base_efficiency: float = 0.55,
    split_k: int = 1,
) -> BatchKernelPerf:
    """Price a whole tiling population in one shot.

    Same keyword surface as :func:`repro.gpu.pipelinemodel.kernel_time`;
    every legal lane's breakdown is bit-identical to the scalar call.
    One batched profile-run counter tick replaces the scalar path's
    per-call (tracer-gated) tick — cheap enough to record unconditionally,
    which is what makes ``gpu_profile_runs{pricing_mode=vector}`` reliable
    in BENCH reports.
    """
    if split_k < 1:
        raise TilingError(f"split_k must be >= 1, got {split_k}")
    t = tilings
    elem = bits / 8

    legal = validate_mask(t, bits, device=device, double_buffer=double_buffer)
    base_blocks = _grid_blocks(gemm, t)
    blocks = base_blocks * split_k
    bps = _blocks_per_sm(t, bits, device, double_buffer)
    legal = legal & (bps > 0)  # the scalar "block does not fit on an SM"

    warps_resident = bps * t.warps_per_block
    occupancy = np.minimum(1.0, warps_resident / 16.0)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        compute = _compute_cycles(
            gemm, bits, t, device,
            tensor_core=tensor_core, base_efficiency=base_efficiency,
            split_k=split_k, occupancy=occupancy,
        )
        dram = _dram_cycles(
            gemm, bits, t, device,
            coalesced=coalesced, in_place_epilogue=in_place_epilogue,
            out_elem_bytes=out_elem_bytes, split_k=split_k,
        )
        k_tile = np.maximum(1, t.k_tile)
        k_pad = _ceil_div(gemm.k, k_tile) * k_tile
        k_pad_block = _ceil_div(_ceil_div(k_pad, split_k), k_tile) * k_tile
        frag_bytes_per_block = (
            t.block_col_warps * t.m_tile
            + t.block_row_warps * t.n_tile
        ) * k_pad_block * elem
        smem_bytes_total = blocks * frag_bytes_per_block
        smem_bw = device.smem_bytes_per_cycle if reorder_smem else 24.0
        active_sms = np.minimum(blocks, device.sm_count)
        smem = smem_bytes_total / (smem_bw * active_sms)

    launch = _launch_cycles(device, split_k)
    obs_metrics.counter(
        "gpu_profile_runs", bits=bits, pricing_mode="vector"
    ).inc(len(t))
    return BatchKernelPerf(
        gemm=gemm,
        bits=bits,
        tilings=t,
        compute_cycles=compute,
        dram_cycles=dram,
        smem_cycles=smem,
        launch_cycles=launch,
        blocks=blocks,
        blocks_per_sm=bps,
        occupancy=occupancy,
        overlapped=double_buffer,
        legal=legal,
    )
