"""Turing TU102 machine description (Tab. 1, right column: RTX 2080Ti)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuDevice:
    """The handful of machine constants the cost model consumes.

    Tensor-core MAC rates follow the Turing whitepaper ratios: FP16 FMA
    512/SM/cycle, INT8 2x that, INT4 4x.  ``dp4a`` runs on the 64 INT32
    cores (4 MACs each).  As with the ARM model, the experiments depend on
    the ratios, not the absolutes.
    """

    name: str = "rtx-2080ti"
    sm_count: int = 68
    clock_hz: float = 1.545e9
    dram_bytes_per_sec: float = 616e9
    l2_bytes: int = 5_632 * 1024
    smem_per_sm: int = 64 * 1024
    max_smem_per_block: int = 64 * 1024
    regs_per_sm: int = 65_536
    max_threads_per_sm: int = 1_024
    max_blocks_per_sm: int = 16
    warp_size: int = 32
    #: multiply-accumulate rates per SM per cycle
    tc_int8_macs: int = 1_024
    tc_int4_macs: int = 2_048
    dp4a_macs: int = 256
    #: shared-memory bandwidth per SM (bytes/cycle), fully-coalesced LDS.128
    smem_bytes_per_cycle: float = 128.0
    #: kernel launch + driver overhead, seconds
    launch_overhead_s: float = 3.0e-6

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bytes_per_sec / self.clock_hz

    def seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def microseconds(self, cycles: float) -> float:
        return self.seconds(cycles) * 1e6

    def mac_rate(self, bits: int, *, tensor_core: bool = True) -> int:
        """MACs per SM per cycle for the given operand width."""
        if not tensor_core:
            return self.dp4a_macs
        if bits == 8:
            return self.tc_int8_macs
        if bits == 4:
            return self.tc_int4_macs
        raise ValueError(f"Turing tensor cores support 4/8-bit, got {bits}")


TU102 = GpuDevice()
