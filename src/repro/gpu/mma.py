"""Exact semantics of the Tensor Core ``mma`` shapes and ``dp4a``.

Turing exposes warp-level matrix-multiply-accumulate through PTX ``mma``
instructions (Sec. 2.3): ``mma.m8n8k16`` for int8 and ``mma.m8n8k32`` for
int4, both accumulating into int32; ``dp4a`` is the CUDA-core 4-way int8
dot product cuDNN's baseline kernels use.  These functions are the
bit-exact definitions the implicit-GEMM kernel composes; property tests
pin them against plain integer matmul.

int4 values travel packed two-per-byte (low nibble first); helpers below
convert between packed storage and signed values.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def _check(a: np.ndarray, b: np.ndarray, m: int, n: int, k: int, bits: int) -> None:
    if a.shape != (m, k) or b.shape != (k, n):
        raise ShapeError(
            f"mma.m{m}n{n}k{k} expects A ({m},{k}) and B ({k},{n}); "
            f"got {a.shape} and {b.shape}"
        )
    half = 1 << (bits - 1)
    for name, arr in (("A", a), ("B", b)):
        if not np.issubdtype(arr.dtype, np.integer):
            raise ShapeError(f"{name} must be integer, got {arr.dtype}")
        if arr.size and (arr.min() < -half or arr.max() >= half):
            raise ShapeError(f"{name} exceeds {bits}-bit range")


def mma_m8n8k16_int8(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
) -> np.ndarray:
    """``D(8x8,int32) = A(8x16,int8) @ B(16x8,int8) + C``."""
    _check(a, b, 8, 8, 16, 8)
    d = a.astype(np.int32) @ b.astype(np.int32)
    if c is not None:
        if c.shape != (8, 8):
            raise ShapeError(f"C must be (8, 8), got {c.shape}")
        d = d + c.astype(np.int32)
    return d.astype(np.int32)


def mma_m8n8k32_int4(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None
) -> np.ndarray:
    """``D(8x8,int32) = A(8x32,int4) @ B(32x8,int4) + C``."""
    _check(a, b, 8, 8, 32, 4)
    d = a.astype(np.int32) @ b.astype(np.int32)
    if c is not None:
        if c.shape != (8, 8):
            raise ShapeError(f"C must be (8, 8), got {c.shape}")
        d = d + c.astype(np.int32)
    return d.astype(np.int32)


def dp4a(a4: np.ndarray, b4: np.ndarray, c: int | np.ndarray = 0) -> np.ndarray:
    """CUDA-core 4-way int8 dot product with int32 accumulate.

    Vectorized: trailing dimension must be 4; leading dimensions broadcast.
    """
    a4 = np.asarray(a4)
    b4 = np.asarray(b4)
    if a4.shape[-1] != 4 or b4.shape[-1] != 4:
        raise ShapeError("dp4a operands must have trailing dimension 4")
    for name, arr in (("A", a4), ("B", b4)):
        if arr.size and (arr.min() < -128 or arr.max() > 127):
            raise ShapeError(f"dp4a {name} exceeds int8 range")
    prod = np.sum(a4.astype(np.int64) * b4.astype(np.int64), axis=-1)
    return (prod + np.asarray(c, dtype=np.int64)).astype(np.int32)


# ---------------------------------------------------------------------------
# int4 nibble packing
# ---------------------------------------------------------------------------


def pack_int4(values: np.ndarray) -> np.ndarray:
    """Pack signed int4 values two-per-byte along the last axis (low nibble
    first).  The last axis length must be even."""
    values = np.asarray(values)
    if values.shape[-1] % 2:
        raise ShapeError("pack_int4 needs an even trailing dimension")
    if values.size and (values.min() < -8 or values.max() > 7):
        raise ShapeError("values exceed int4 range [-8, 7]")
    u = (values.astype(np.int64) & 0xF).astype(np.uint8)
    lo = u[..., 0::2]
    hi = u[..., 1::2]
    return (lo | (hi << 4)).astype(np.uint8)


def unpack_int4(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_int4`; returns int8 values in [-8, 7]."""
    packed = np.asarray(packed, dtype=np.uint8)
    lo = (packed & 0xF).astype(np.int8)
    hi = (packed >> 4).astype(np.int8)
    lo = np.where(lo >= 8, lo - 16, lo).astype(np.int8)
    hi = np.where(hi >= 8, hi - 16, hi).astype(np.int8)
    out = np.empty(packed.shape[:-1] + (packed.shape[-1] * 2,), dtype=np.int8)
    out[..., 0::2] = lo
    out[..., 1::2] = hi
    return out


def mma_shape(bits: int) -> tuple[int, int, int]:
    """(m, n, k) of the Turing mma instruction for a bit width."""
    if bits == 8:
        return (8, 8, 16)
    if bits == 4:
        return (8, 8, 32)
    raise ShapeError(f"no Turing integer mma for {bits}-bit")
