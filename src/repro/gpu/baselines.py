"""GPU baseline models: cuDNN's dp4a kernels and TensorRT's int8 kernels.

Both follow the paper's own characterization (Sec. 5.1/5.3):

* **cuDNN 8-bit** — implicit-precomp GEMM on the CUDA cores with ``dp4a``
  (no Tensor Cores: "currently, cuDNN does not support the 8-bit
  convolution with Tensor Core"), with library-chosen fixed tiling.
* **TensorRT 8-bit** — Tensor Core kernels with "many low-level
  optimizations with heavily-tuned SASS code" (higher sustained
  efficiency) but *heuristic* tile selection from a small rule table
  rather than per-shape profiling — which is exactly where the paper's
  auto-search wins on small batches and unusual shapes (Sec. 5.3/5.5).
"""

from __future__ import annotations

from ..types import ConvSpec, GemmShape
from .device import GpuDevice, TU102
from .pipelinemodel import GpuKernelPerf, conv_gemm_shape, kernel_time
from .tiling import TilingParams


def _clamp_tile(value: int, candidates: tuple[int, ...]) -> int:
    for c in candidates:
        if value <= c:
            return c
    return candidates[-1]


def cudnn_tiling(gemm: GemmShape) -> TilingParams:
    """cuDNN picks among a few fixed template sizes by problem size."""
    m_tile = _clamp_tile(gemm.m, (64, 128))
    n_tile = _clamp_tile(gemm.n, (64, 128))
    warps = {(64, 64): (2, 2), (64, 128): (2, 4), (128, 64): (4, 2),
             (128, 128): (2, 4)}[(m_tile, n_tile)]
    return TilingParams(m_tile, n_tile, k_tile=32, k_step=16,
                        block_row_warps=warps[0], block_col_warps=warps[1])


def cudnn_dp4a_time(
    spec: ConvSpec, *, device: GpuDevice = TU102
) -> GpuKernelPerf:
    """The Fig. 10 baseline: cuDNN 8-bit convolution with dp4a."""
    gemm = conv_gemm_shape(spec)
    return kernel_time(
        gemm,
        8,
        cudnn_tiling(gemm),
        device=device,
        tensor_core=False,
        double_buffer=True,
        reorder_smem=True,
        coalesced=True,
        in_place_epilogue=True,
        base_efficiency=0.70,  # mature library code on the simple dp4a pipe
    )


def tensorrt_tiling(gemm: GemmShape) -> tuple[TilingParams, int]:
    """TensorRT's heuristic: sized tiles plus split-K for small grids.

    The rules favor 128-wide tiles (good for big batches) and shard the
    reduction when the grid would under-fill the device; they are not
    shape-profiled, so batch-1 and unusual shapes still land off the
    optimum — the paper's observed weakness (Sec. 5.3/5.5).
    """
    m_tile = 128 if gemm.m >= 128 else 64
    n_tile = 128 if gemm.n >= 128 else 64
    tiling = TilingParams(m_tile, n_tile, k_tile=64, k_step=32,
                          block_row_warps=2, block_col_warps=4)
    from ..util import ceil_div

    base_blocks = ceil_div(gemm.m, m_tile) * ceil_div(gemm.n, n_tile)
    split_k = 1
    max_split = max(1, gemm.k // (2 * tiling.k_tile))
    while base_blocks * split_k < 2 * TU102.sm_count and split_k < min(8, max_split):
        split_k *= 2
    return tiling, split_k


def _trt_shape_familiar(gemm: GemmShape) -> bool:
    """TensorRT's hand-tuned SASS kernels target the common GEMM grid
    (64-multiple N and K — ResNet-family shapes); anything else falls back
    to generic code.  This is the paper's own reading of Sec. 5.5: unusual
    shapes (SCR-ResNet-50, DenseNet-121's growing channels) are "out of
    the radar of TensorRT for heavy optimization"."""
    return gemm.n % 64 == 0 and gemm.k % 64 == 0


def tensorrt_time(
    spec: ConvSpec, *, device: GpuDevice = TU102
) -> GpuKernelPerf:
    """TensorRT 8-bit Tensor Core kernels (profiled via trtexec in the
    paper)."""
    gemm = conv_gemm_shape(spec)
    tiling, split_k = tensorrt_tiling(gemm)
    eff = 0.82 if _trt_shape_familiar(gemm) else 0.68
    return kernel_time(
        gemm,
        8,
        tiling,
        device=device,
        tensor_core=True,
        double_buffer=True,
        reorder_smem=True,
        coalesced=True,
        in_place_epilogue=True,
        base_efficiency=eff,  # heavily-tuned SASS on common shapes (Sec. 5.3)
        split_k=split_k,
    )
