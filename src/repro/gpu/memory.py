"""Memory-access analyzers: global coalescing and shared-memory reordering.

Two of the paper's multi-level memory optimizations (Sec. 4.3) are about
*access shape*, not volume:

* **Coalesced global access** — each thread reads 16 consecutive bytes via
  ``int4`` vectors, so a warp's request splits into four independent
  128-byte transactions (one per quarter-warp).  The analyzer counts the
  32-byte DRAM sectors a warp request actually touches, so scattered or
  narrow patterns show their cost.
* **Shared-memory access reordering (Fig. 5)** — re-assigning which thread
  reads which fragment block turns four strided ``LDS.32`` per thread into
  one ``LDS.128``, cutting shared-memory instructions to a quarter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError

SECTOR_BYTES = 32
WARP = 32


def coalesced_transactions(addresses: np.ndarray, access_bytes: int) -> int:
    """Count 32-byte sectors a warp request touches.

    ``addresses``: byte address each of the 32 threads accesses;
    ``access_bytes``: contiguous bytes each thread reads/writes.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.shape != (WARP,):
        raise ShapeError(f"a warp has 32 threads, got {addresses.shape}")
    if access_bytes <= 0:
        raise ShapeError("access_bytes must be positive")
    sectors: set[int] = set()
    for addr in addresses:
        first = int(addr) // SECTOR_BYTES
        last = (int(addr) + access_bytes - 1) // SECTOR_BYTES
        sectors.update(range(first, last + 1))
    return len(sectors)


def vectorized_warp_addresses(base: int, bytes_per_thread: int) -> np.ndarray:
    """The paper's coalesced pattern: thread *i* reads bytes
    ``base + i*bytes_per_thread`` (consecutive ``int4``/``int2`` chunks)."""
    return base + np.arange(WARP, dtype=np.int64) * bytes_per_thread


def strided_warp_addresses(base: int, stride: int) -> np.ndarray:
    """A strided (uncoalesced) pattern: thread *i* at ``base + i*stride``."""
    return base + np.arange(WARP, dtype=np.int64) * stride


@dataclass(frozen=True)
class SmemAccessReport:
    """LDS instruction accounting for one warp-level fragment load."""

    bytes_per_thread: int
    reordered: bool
    lds_instructions: int
    lds_width_bytes: int

    @property
    def instructions_ratio_vs_unordered(self) -> float:
        base = -(-self.bytes_per_thread // 4)  # LDS.32 count
        return self.lds_instructions / base


def lds_instructions(bytes_per_thread: int, *, reordered: bool) -> SmemAccessReport:
    """Shared-memory load instructions per thread for a fragment read.

    Fig. 5: the common (unordered) pattern needs one ``LDS.32`` per 4-byte
    block; after reordering each thread's blocks are contiguous, so one
    ``LDS.128`` covers 16 bytes — "the number of access instructions is
    reduced to one-quarter of the original".
    """
    if bytes_per_thread <= 0:
        raise ShapeError("bytes_per_thread must be positive")
    if reordered:
        width = 16
        count = -(-bytes_per_thread // width)
    else:
        width = 4
        count = -(-bytes_per_thread // width)
    return SmemAccessReport(
        bytes_per_thread=bytes_per_thread,
        reordered=reordered,
        lds_instructions=count,
        lds_width_bytes=width,
    )


def fig5_reordering_example() -> tuple[SmemAccessReport, SmemAccessReport]:
    """The exact Fig. 5 case: mma8816, 16 bytes of matrix A per thread."""
    return (
        lds_instructions(16, reordered=False),
        lds_instructions(16, reordered=True),
    )
