"""Tiling parameters and partition legality (Sec. 4.2, Fig. 4).

The data-partition mechanism assigns an ``MTile x NTile`` C tile to each
thread block, splits it into per-warp fragments via ``blockRowWarpNum x
blockColWarpNum``, and walks K in ``KTile`` chunks (staged through shared
memory) sub-divided into ``KStep`` register-resident steps — exactly the
parameter set of Alg. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import TilingError
from ..types import GemmShape
from ..util import ceil_div
from .device import GpuDevice, TU102
from .mma import mma_shape


@dataclass(frozen=True)
class TilingParams:
    """One point of the kernel-template instantiation space."""

    m_tile: int
    n_tile: int
    k_tile: int
    k_step: int
    block_row_warps: int  #: blockRowWarpNum
    block_col_warps: int  #: blockColWarpNum

    @property
    def warps_per_block(self) -> int:
        return self.block_row_warps * self.block_col_warps

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * 32

    @property
    def m_frag(self) -> int:
        """MFrag: C-fragment rows owned by one warp."""
        return self.m_tile // self.block_row_warps

    @property
    def n_frag(self) -> int:
        return self.n_tile // self.block_col_warps

    def smem_bytes(self, bits: int, *, double_buffer: bool = True) -> int:
        """A_Tile + B_Tile staging footprint."""
        elem = bits / 8
        tiles = (self.m_tile * self.k_tile + self.k_tile * self.n_tile) * elem
        return int(tiles * (2 if double_buffer else 1))

    def regs_per_thread(self, bits: int) -> int:
        """Accumulator fragments + operand fragments + bookkeeping."""
        acc = self.m_frag * self.n_frag / 32  # int32 accumulators per thread
        elem = bits / 8
        frag = (self.m_frag + self.n_frag) * self.k_step * elem / 32 / 4
        return int(acc + 2 * frag) + 16  # + addressing/bookkeeping

    def describe(self) -> str:
        return (
            f"M{self.m_tile}xN{self.n_tile}xK{self.k_tile}/ks{self.k_step}"
            f"@{self.block_row_warps}x{self.block_col_warps}w"
        )


def validate_tiling(
    tiling: TilingParams,
    bits: int,
    *,
    device: GpuDevice = TU102,
    double_buffer: bool = True,
) -> None:
    """Raise :class:`TilingError` for configurations the template could not
    instantiate (Sec. 5.1's auto-search only profiles legal candidates)."""
    mm, nn, kk = mma_shape(bits)
    t = tiling
    if t.m_tile <= 0 or t.n_tile <= 0 or t.k_tile <= 0 or t.k_step <= 0:
        raise TilingError(f"{t.describe()}: non-positive tile size")
    if t.block_row_warps <= 0 or t.block_col_warps <= 0:
        raise TilingError(f"{t.describe()}: non-positive warp grid")
    if t.m_tile % t.block_row_warps or t.n_tile % t.block_col_warps:
        raise TilingError(f"{t.describe()}: tile not divisible by warp grid")
    if t.m_frag % mm or t.n_frag % nn:
        raise TilingError(
            f"{t.describe()}: fragment {t.m_frag}x{t.n_frag} not a multiple "
            f"of mma {mm}x{nn}"
        )
    if t.k_tile % t.k_step or t.k_step % kk:
        raise TilingError(
            f"{t.describe()}: KTile/KStep must nest multiples of mma k={kk}"
        )
    if t.threads_per_block > 1024:
        raise TilingError(f"{t.describe()}: > 1024 threads per block")
    if t.smem_bytes(bits, double_buffer=double_buffer) > device.max_smem_per_block:
        raise TilingError(f"{t.describe()}: shared memory tile exceeds budget")
    if t.regs_per_thread(bits) > 255:
        raise TilingError(f"{t.describe()}: register fragment exceeds 255/thread")
    if t.regs_per_thread(bits) * t.threads_per_block > device.regs_per_sm:
        raise TilingError(f"{t.describe()}: block register file exceeds the SM")


def default_tiling(bits: int) -> TilingParams:
    """The 'programmer experience' defaults (Fig. 11's w/o-profile arm)."""
    return TilingParams(
        m_tile=128, n_tile=128, k_tile=64, k_step=mma_shape(bits)[2] * 2,
        block_row_warps=2, block_col_warps=4,
    )


def search_space(bits: int, *, device: GpuDevice = TU102) -> Iterator[TilingParams]:
    """The template-instantiation grid the profile-run auto-search sweeps.

    Mirrors 'we use C++ template to generate multiple kernels with
    different combinations of tiling parameters' (Sec. 5.1).
    """
    _, _, kk = mma_shape(bits)
    for m_tile in (16, 32, 64, 128, 256):
        for n_tile in (16, 32, 64, 128, 256):
            for k_tile in (kk, kk * 2, kk * 4):
                for k_step in (kk, kk * 2):
                    if k_tile % k_step:
                        continue
                    for brw, bcw in ((1, 1), (1, 2), (2, 1), (2, 2),
                                     (2, 4), (4, 2), (4, 4)):
                        t = TilingParams(m_tile, n_tile, k_tile, k_step, brw, bcw)
                        try:
                            validate_tiling(t, bits, device=device)
                        except TilingError:
                            continue
                        yield t


def search_space_size(bits: int) -> int:
    """Template instantiations the sweep *considers* (before legality).

    The denominator for autotune diagnostics: ``search_space`` yields the
    legal subset of this grid, and :class:`repro.errors.AutotuneError`
    reports both numbers when the subset is empty.
    """
    _, _, kk = mma_shape(bits)
    count = 0
    for k_tile in (kk, kk * 2, kk * 4):
        for k_step in (kk, kk * 2):
            if k_tile % k_step:
                continue
            count += 1
    return count * 5 * 5 * 7  # x m_tile x n_tile x warp-grid choices


def grid_blocks(gemm: GemmShape, tiling: TilingParams) -> int:
    """Thread blocks launched for a GEMM under a tiling (grid level)."""
    return ceil_div(gemm.m, tiling.m_tile) * ceil_div(gemm.n, tiling.n_tile)
