"""Implicit-precomp GEMM offset buffer (Sec. 4.2 / Alg. 2).

The implicit GEMM never materializes the im2col matrix; instead, element
``(p, k)`` of the conceptual A matrix (output pixel ``p``, reduction index
``k``) is gathered straight from the NHWC input.  "We store the offsets of
elements instead of the pointers in the precomputed buffer ... the offset
calculation process only needs to be done once for a specific shape."

Decomposition used here (and by real implementations): the gather offset
splits into a per-pixel *base* (where the receptive field starts) plus a
per-``k`` *delta* (position within the field), so the buffer is

* ``k_dy, k_dx, k_dc``: K-length tap coordinates (for bounds checks),
* ``k_delta``: K-length flat offset deltas,
* ``base_y, base_x``: per-output-pixel field origins (may be negative with
  padding, hence the explicit bound check instead of pointer arithmetic).

Total size is a few KB to tens of KB — the "0.5 KB to 50 KB" of Sec. 5.4,
which :meth:`PrecomputedOffsets.nbytes` reports exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..types import ConvSpec, Layout


@dataclass(frozen=True)
class PrecomputedOffsets:
    """The shape-specific gather tables of the implicit-precomp kernel."""

    spec: ConvSpec
    k_dy: np.ndarray  #: (K,) tap row within the receptive field
    k_dx: np.ndarray  #: (K,) tap column
    k_dc: np.ndarray  #: (K,) input channel
    k_delta: np.ndarray  #: (K,) flat NHWC offset delta of each tap
    base_y: np.ndarray  #: (OH*OW,) field-origin row (can be negative)
    base_x: np.ndarray  #: (OH*OW,) field-origin column

    @property
    def nbytes(self) -> int:
        """Global-memory footprint of the buffer (Sec. 5.4's 0.5~50 KB)."""
        return sum(
            arr.nbytes
            for arr in (self.k_dy, self.k_dx, self.k_dc, self.k_delta,
                        self.base_y, self.base_x)
        )

    def gather(self, x_nhwc: np.ndarray, pixels: np.ndarray,
               ks: np.ndarray) -> np.ndarray:
        """Gather the A-matrix tile ``[pixels x ks]`` for one image.

        Out-of-image taps (padding) gather zero, exactly as the kernel's
        predicated loads do.
        """
        spec = self.spec
        if x_nhwc.shape != (spec.height, spec.width, spec.in_channels):
            raise ShapeError(
                f"gather expects one NHWC image "
                f"{(spec.height, spec.width, spec.in_channels)}, got {x_nhwc.shape}"
            )
        ys = self.base_y[pixels][:, None] + self.k_dy[None, ks]
        xs = self.base_x[pixels][:, None] + self.k_dx[None, ks]
        cs = np.broadcast_to(self.k_dc[None, ks], ys.shape)
        valid = (ys >= 0) & (ys < spec.height) & (xs >= 0) & (xs < spec.width)
        out = np.zeros(ys.shape, dtype=x_nhwc.dtype)
        out[valid] = x_nhwc[ys[valid], xs[valid], cs[valid]]
        return out


def build_offsets(spec: ConvSpec) -> PrecomputedOffsets:
    """Pre-processing pass: one offset computation per shape (Sec. 4.2)."""
    if spec.groups != 1:
        raise ShapeError("implicit GEMM path supports groups=1")
    kh, kw = spec.kernel
    sh, sw = spec.stride
    ph, pw = spec.padding
    cin = spec.in_channels

    # K-axis ordering (dy, dx, c) matches im2col_nhwc / NHWC weights
    taps = np.arange(kh * kw * cin)
    k_dc = (taps % cin).astype(np.int32)
    k_dx = ((taps // cin) % kw).astype(np.int32)
    k_dy = (taps // (cin * kw)).astype(np.int32)
    k_delta = (k_dy * spec.width * cin + k_dx * cin + k_dc).astype(np.int32)

    pix = np.arange(spec.out_spatial)
    oy = pix // spec.out_width
    ox = pix % spec.out_width
    base_y = (oy * sh - ph).astype(np.int32)
    base_x = (ox * sw - pw).astype(np.int32)
    return PrecomputedOffsets(
        spec=spec, k_dy=k_dy, k_dx=k_dx, k_dc=k_dc, k_delta=k_delta,
        base_y=base_y, base_x=base_x,
    )
