"""Functional implicit-precomp GEMM convolution (Alg. 2).

Walks the exact structure of the paper's kernel:

* grid level — C (the ``batch*OH*OW x Cout`` NHWC output matrix) is cut
  into ``MTile x NTile`` block tiles;
* ``k_outer`` — A_Tile is *gathered* from the input via the precomputed
  offset buffer (never an explicit im2col matrix), B_Tile sliced from the
  weights: the shared-memory staging of lines 3-4;
* ``k_inner`` / warp level — each warp's ``MFrag x NFrag`` C fragment is
  accumulated ``KStep`` at a time through real ``mma.m8n8k16`` /
  ``mma.m8n8k32`` calls (lines 6-14);
* epilogue — bias + re-quantization (or fused dequantization / ReLU) apply
  *in place* on the int32 fragments before the single store (line 15).

Bit-exact against the NCHW reference (tests transpose layouts); int4 mode
additionally round-trips operands through nibble packing to prove the
storage format lossless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..conv.im2col import weight_matrix
from ..errors import ShapeError, UnsupportedBitsError
from ..quant.ranges import qrange
from ..quant.schemes import requantize, requantize_per_channel
from ..types import ConvSpec, GemmShape, Layout
from ..util import ceil_div
from .mma import mma_m8n8k16_int8, mma_m8n8k32_int4, mma_shape, pack_int4, unpack_int4
from .precompute import PrecomputedOffsets, build_offsets
from .tiling import TilingParams, default_tiling, validate_tiling

EPILOGUES = ("none", "requant", "requant_relu", "dequant", "dequant_relu")


@dataclass(frozen=True)
class ConvGpuOutput:
    """Result tensor plus the metadata the runtime needs downstream."""

    data: np.ndarray  #: NHWC; int32 ("none"), int8 (requant*) or f64 (dequant*)
    epilogue: str
    bits: int
    blocks: int
    tiling: TilingParams


def _mma_for(bits: int):
    if bits == 8:
        return mma_m8n8k16_int8
    if bits == 4:
        return mma_m8n8k32_int4
    raise UnsupportedBitsError(bits, "GPU path covers 4-bit and 8-bit")


def _epilogue(
    acc: np.ndarray,
    mode: str,
    bits: int,
    bias: np.ndarray | None,
    requant_mult: float,
    dequant_scale: float,
) -> np.ndarray:
    """In-place bias + re-quantization on the int32 fragment (Sec. 4.3)."""
    if bias is not None:
        acc = acc + bias[None, :]
    if mode == "none":
        return acc.astype(np.int32)
    if mode.startswith("requant"):
        out_range = qrange(bits)
        mult = np.asarray(requant_mult)
        if mult.ndim == 1:  # per-output-channel weight scales
            q = requantize_per_channel(acc, mult, out_range, axis=-1)
        else:
            q = requantize(acc, float(mult), out_range)
        if mode.endswith("relu"):
            # 'changing the truncated range of re-quantization' (Sec. 4.4)
            q = np.clip(q, 0, out_range.qmax)
        return q.astype(np.int8)
    if mode.startswith("dequant"):
        f = acc.astype(np.float64) * dequant_scale
        if mode.endswith("relu"):
            f = np.maximum(f, 0.0)
        return f
    raise ShapeError(f"unknown epilogue {mode!r}")


def conv2d_implicit_gemm(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
    *,
    bits: int = 8,
    tiling: TilingParams | None = None,
    epilogue: str = "none",
    bias: np.ndarray | None = None,
    requant_mult: float | np.ndarray = 0.03125,
    dequant_scale: float = 1.0,
    offsets: PrecomputedOffsets | None = None,
    pack_nibbles: bool | None = None,
) -> ConvGpuOutput:
    """Run the Alg. 2 kernel functionally (NHWC activations, OIHW weights).

    ``pack_nibbles`` (int4 only; default on) round-trips every staged tile
    through the packed two-per-byte storage format.
    """
    if epilogue not in EPILOGUES:
        raise ShapeError(f"unknown epilogue {epilogue!r}; one of {EPILOGUES}")
    x = np.asarray(x)
    if x.shape != spec.input_shape(Layout.NHWC):
        raise ShapeError(
            f"{spec.name}: input {x.shape} != NHWC {spec.input_shape(Layout.NHWC)}"
        )
    half = 1 << (bits - 1)
    if x.size and (x.min() < -half or x.max() >= half):
        raise ShapeError(f"input exceeds {bits}-bit range")
    mma = _mma_for(bits)
    mm, nn, kk = mma_shape(bits)
    tiling = tiling or default_tiling(bits)
    validate_tiling(tiling, bits)
    if pack_nibbles is None:
        pack_nibbles = bits == 4

    if bias is not None:
        bias = np.asarray(bias, dtype=np.int32)
        if bias.shape != (spec.out_channels,):
            raise ShapeError(f"bias shape {bias.shape} != ({spec.out_channels},)")

    offsets = offsets or build_offsets(spec)
    # B matrix: (K, Cout) with NHWC K ordering (dy, dx, c)
    b_full = weight_matrix(spec, w, layout=Layout.NHWC).T.copy()

    gemm = GemmShape(m=spec.batch * spec.out_spatial, k=spec.gemm_k,
                     n=spec.out_channels)
    m_pad = ceil_div(gemm.m, tiling.m_tile) * tiling.m_tile
    n_pad = ceil_div(gemm.n, tiling.n_tile) * tiling.n_tile
    k_pad = ceil_div(gemm.k, tiling.k_tile) * tiling.k_tile
    c_full = np.zeros((m_pad, n_pad), dtype=np.int64)

    pixels_per_img = spec.out_spatial
    k_tile_num = k_pad // tiling.k_tile
    blocks = 0
    for m0 in range(0, m_pad, tiling.m_tile):
        for n0 in range(0, n_pad, tiling.n_tile):
            blocks += 1
            acc_tile = np.zeros((tiling.m_tile, tiling.n_tile), dtype=np.int64)
            for ko in range(k_tile_num):
                k0 = ko * tiling.k_tile
                a_tile = _gather_a_tile(
                    spec, x, offsets, m0, k0, tiling, gemm, pixels_per_img
                )
                b_tile = _slice_b_tile(b_full, k0, n0, tiling, gemm)
                if pack_nibbles:
                    a_tile = unpack_int4(pack_int4(a_tile))
                    b_tile = unpack_int4(pack_int4(b_tile))
                # warp-level fragments, mma at a time (Alg. 2 lines 6-14)
                for wr in range(tiling.block_row_warps):
                    fr = wr * tiling.m_frag
                    for wc in range(tiling.block_col_warps):
                        fc = wc * tiling.n_frag
                        for ks in range(0, tiling.k_tile, tiling.k_step):
                            for ki in range(0, tiling.k_step, kk):
                                k_lo = ks + ki
                                for fm in range(0, tiling.m_frag, mm):
                                    for fn in range(0, tiling.n_frag, nn):
                                        a_frag = a_tile[
                                            fr + fm : fr + fm + mm,
                                            k_lo : k_lo + kk,
                                        ]
                                        b_frag = b_tile[
                                            k_lo : k_lo + kk,
                                            fc + fn : fc + fn + nn,
                                        ]
                                        acc_tile[
                                            fr + fm : fr + fm + mm,
                                            fc + fn : fc + fn + nn,
                                        ] += mma(a_frag, b_frag)
            c_full[m0 : m0 + tiling.m_tile, n0 : n0 + tiling.n_tile] = acc_tile

    c = c_full[: gemm.m, : gemm.n]
    out = _epilogue(c, epilogue, bits, bias, requant_mult, dequant_scale)
    shaped = out.reshape(spec.batch, spec.out_height, spec.out_width,
                         spec.out_channels)
    return ConvGpuOutput(
        data=shaped, epilogue=epilogue, bits=bits, blocks=blocks, tiling=tiling
    )


def _gather_a_tile(spec, x, offsets, m0, k0, tiling, gemm, pixels_per_img):
    """Stage one A_Tile: predicated gathers through the offset buffer."""
    rows = np.arange(m0, m0 + tiling.m_tile)
    cols = np.arange(k0, k0 + tiling.k_tile)
    tile = np.zeros((tiling.m_tile, tiling.k_tile), dtype=np.int8)
    valid_rows = rows < gemm.m
    valid_cols = cols < gemm.k
    if not valid_rows.any() or not valid_cols.any():
        return tile
    vr = rows[valid_rows]
    vc = cols[valid_cols]
    imgs = vr // pixels_per_img
    pix = vr % pixels_per_img
    for img in np.unique(imgs):
        sel = imgs == img
        gathered = offsets.gather(x[img], pix[sel], vc)
        # scatter into the padded tile
        r_idx = np.nonzero(valid_rows)[0][sel]
        tile[np.ix_(r_idx, np.nonzero(valid_cols)[0])] = gathered
    return tile


def _slice_b_tile(b_full, k0, n0, tiling, gemm):
    tile = np.zeros((tiling.k_tile, tiling.n_tile), dtype=np.int8)
    k1 = min(k0 + tiling.k_tile, gemm.k)
    n1 = min(n0 + tiling.n_tile, gemm.n)
    if k1 > k0 and n1 > n0:
        tile[: k1 - k0, : n1 - n0] = b_full[k0:k1, n0:n1]
    return tile
