"""Analytic GPU kernel cost model.

Composes the quantities the paper's optimizations manipulate:

* **compute** — tensor-core (or dp4a) MAC cycles, derated by achieved
  occupancy and wave quantization (few blocks -> idle SMs, the reason
  shape-adapted tiling wins at batch 1, Sec. 5.3);
* **dram** — per-block A/B tile traffic (A re-read once per N-tile column,
  B once per M-tile row; re-reads are served partly by L2) plus the
  epilogue store;
* **smem** — staged-fragment traffic, 4x more instructions (and
  correspondingly less bandwidth) without the Fig. 5 reordering;
* **overlap** — with the Fig. 6 register double buffer, compute and memory
  pipelines overlap (``max``); without it they serialize (``+``).

All times are device cycles; ``GpuKernelPerf.microseconds`` converts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TilingError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..types import ConvSpec, GemmShape
from ..util import ceil_div
from .device import GpuDevice, TU102
from .tiling import TilingParams, default_tiling, grid_blocks, validate_tiling


@dataclass(frozen=True)
class GpuKernelPerf:
    """Cycle breakdown of one kernel launch."""

    gemm: GemmShape
    tiling: TilingParams
    bits: int
    compute_cycles: float
    dram_cycles: float
    smem_cycles: float
    launch_cycles: float
    blocks: int
    blocks_per_sm: int
    occupancy: float
    overlapped: bool

    @property
    def total_cycles(self) -> float:
        if self.overlapped:
            body = max(self.compute_cycles, self.dram_cycles, self.smem_cycles)
        else:
            body = self.compute_cycles + self.dram_cycles + 0.5 * self.smem_cycles
        return body + self.launch_cycles

    def microseconds(self, device: GpuDevice = TU102) -> float:
        return device.microseconds(self.total_cycles)

    @property
    def bound(self) -> str:
        parts = {
            "compute": self.compute_cycles,
            "dram": self.dram_cycles,
            "smem": self.smem_cycles,
        }
        return max(parts, key=parts.get)


def _blocks_per_sm(tiling: TilingParams, bits: int, device: GpuDevice,
                   double_buffer: bool) -> int:
    by_smem = device.smem_per_sm // max(
        1, tiling.smem_bytes(bits, double_buffer=double_buffer))
    by_threads = device.max_threads_per_sm // tiling.threads_per_block
    by_regs = device.regs_per_sm // max(
        1, tiling.regs_per_thread(bits) * tiling.threads_per_block)
    return max(0, min(by_smem, by_threads, by_regs, device.max_blocks_per_sm))


#: cycles per k_outer iteration: __syncthreads, staging pointer math,
#: predicated-gather index arithmetic — what makes micro tiles non-free
_K_ITER_OVERHEAD = 60.0


def _compute_cycles(
    gemm: GemmShape,
    bits: int,
    tiling: TilingParams,
    device: GpuDevice,
    *,
    tensor_core: bool,
    base_efficiency: float,
    split_k: int,
    occupancy: float,
) -> float:
    """Tensor-pipe cycles at a given occupancy (shared with the pruning
    bound, which calls it at ``occupancy=1.0`` — the best case, since the
    efficiency derate is monotone in occupancy)."""
    k_pad = ceil_div(gemm.k, tiling.k_tile) * tiling.k_tile
    k_pad_block = ceil_div(ceil_div(k_pad, split_k), tiling.k_tile) * tiling.k_tile
    block_macs = tiling.m_tile * tiling.n_tile * k_pad_block
    rate = device.mac_rate(bits, tensor_core=tensor_core)
    eff = base_efficiency * (0.35 + 0.65 * occupancy)
    k_iters = ceil_div(k_pad_block, tiling.k_tile)
    block_cycles = block_macs / (rate * eff) + k_iters * _K_ITER_OVERHEAD
    # an SM's concurrent blocks share its tensor pipes, so throughput-wise
    # blocks serialize per SM; partial waves still pay a full block time
    blocks = grid_blocks(gemm, tiling) * split_k
    return ceil_div(blocks, device.sm_count) * block_cycles


def _dram_cycles(
    gemm: GemmShape,
    bits: int,
    tiling: TilingParams,
    device: GpuDevice,
    *,
    coalesced: bool,
    in_place_epilogue: bool,
    out_elem_bytes: float,
    split_k: int,
) -> float:
    """Global-memory cycles; exact for any tiling (no occupancy term)."""
    elem = bits / 8
    m_blocks = ceil_div(gemm.m, tiling.m_tile)
    n_blocks = ceil_div(gemm.n, tiling.n_tile)
    a_bytes_once = gemm.m * gemm.k * elem
    b_bytes_once = gemm.k * gemm.n * elem
    a_rereads = max(0, n_blocks - 1) * a_bytes_once
    b_rereads = max(0, m_blocks - 1) * b_bytes_once
    # re-reads hit L2 when the operand fits there (weights usually do)
    l2_speedup = 3.0
    a_reread_cost = a_rereads / (l2_speedup if a_bytes_once <= device.l2_bytes else 1.0)
    b_reread_cost = b_rereads / (l2_speedup if b_bytes_once <= device.l2_bytes else 1.0)
    out_bytes = gemm.m * gemm.n * (out_elem_bytes if in_place_epilogue else 4.0)
    if split_k > 1:
        # partial int32 tiles written then re-read by the reduction kernel
        base_blocks = grid_blocks(gemm, tiling)
        partial = base_blocks * split_k * tiling.m_tile * tiling.n_tile * 4.0
        out_bytes += 2.0 * partial
    transaction_derate = 1.0 if coalesced else 4.0
    dram_bytes = (a_bytes_once + b_bytes_once + a_reread_cost
                  + b_reread_cost + out_bytes)
    return dram_bytes * transaction_derate / device.dram_bytes_per_cycle


def _launch_cycles(device: GpuDevice, split_k: int) -> float:
    launch = device.launch_overhead_s * device.clock_hz
    if split_k > 1:
        launch *= 2  # the trailing reduction kernel
    return launch


def kernel_lower_bound(
    gemm: GemmShape,
    bits: int,
    tiling: TilingParams,
    *,
    device: GpuDevice = TU102,
    tensor_core: bool = True,
    double_buffer: bool = True,
    reorder_smem: bool = True,
    coalesced: bool = True,
    in_place_epilogue: bool = True,
    out_elem_bytes: float = 1.0,
    base_efficiency: float = 0.55,
    split_k: int = 1,
) -> float:
    """An *admissible* lower bound on ``kernel_time(...).total_cycles``.

    Built from the same term helpers as :func:`kernel_time` so the two
    cannot drift apart:

    * **compute floor** — the exact compute term evaluated at occupancy
      1.0 (its best case: the efficiency derate is monotone increasing in
      occupancy, which ``min(1, ...)`` caps at 1);
    * **bandwidth floor** — the exact DRAM term, which carries no
      occupancy dependence at all;
    * the shared-memory term is bounded below by zero and dropped.

    With the Fig. 6 double buffer the pipelines overlap, so the body is
    ``max`` of its terms and the bound is ``max(compute_floor, dram)``;
    without it the body is a sum and the bound tightens to
    ``compute_floor + dram``.  Either way ``bound <= total_cycles`` for
    every legal tiling, which is what makes branch-and-bound pruning in
    :mod:`repro.gpu.autotune` exact: a candidate is discarded only when
    its bound already exceeds the incumbent's *achieved* time.

    ``reorder_smem`` is accepted (and ignored) so the autotuner can pass
    its kernel kwargs through unfiltered.
    """
    del reorder_smem  # smem term is lower-bounded by 0
    compute = _compute_cycles(
        gemm, bits, tiling, device,
        tensor_core=tensor_core, base_efficiency=base_efficiency,
        split_k=split_k, occupancy=1.0,
    )
    dram = _dram_cycles(
        gemm, bits, tiling, device,
        coalesced=coalesced, in_place_epilogue=in_place_epilogue,
        out_elem_bytes=out_elem_bytes, split_k=split_k,
    )
    if double_buffer:
        body = max(compute, dram)
    else:
        body = compute + dram
    return body + _launch_cycles(device, split_k)


def kernel_time(
    gemm: GemmShape,
    bits: int,
    tiling: TilingParams | None = None,
    *,
    device: GpuDevice = TU102,
    tensor_core: bool = True,
    double_buffer: bool = True,
    reorder_smem: bool = True,
    coalesced: bool = True,
    in_place_epilogue: bool = True,
    out_elem_bytes: float = 1.0,
    base_efficiency: float = 0.55,
    split_k: int = 1,
) -> GpuKernelPerf:
    """Cycle estimate for one implicit-GEMM conv kernel launch.

    ``base_efficiency`` is the fraction of peak MAC rate a well-occupied
    kernel sustains (instruction mix, bank conflicts, scheduling); the
    TensorRT baseline uses a higher constant (heavily-tuned SASS,
    Sec. 5.3) and cuDNN's dp4a path its own.  ``split_k`` > 1 models the
    library kernels that shard the reduction across blocks (the paper's
    own parameter set does not include it), paying partial-sum traffic and
    a reduction launch.
    """
    tiling = tiling or default_tiling(bits)
    validate_tiling(tiling, bits, device=device, double_buffer=double_buffer)
    if split_k < 1:
        raise TilingError(f"split_k must be >= 1, got {split_k}")
    elem = bits / 8

    base_blocks = grid_blocks(gemm, tiling)
    blocks = base_blocks * split_k
    bps = _blocks_per_sm(tiling, bits, device, double_buffer)
    if bps == 0:
        raise TilingError(f"{tiling.describe()}: block does not fit on an SM")

    # ---- compute ----------------------------------------------------------
    # occupancy derate: tensor pipes need warps in flight to stay fed
    warps_resident = bps * tiling.warps_per_block
    occupancy = min(1.0, warps_resident / 16.0)
    compute = _compute_cycles(
        gemm, bits, tiling, device,
        tensor_core=tensor_core, base_efficiency=base_efficiency,
        split_k=split_k, occupancy=occupancy,
    )

    # ---- dram -------------------------------------------------------------
    dram = _dram_cycles(
        gemm, bits, tiling, device,
        coalesced=coalesced, in_place_epilogue=in_place_epilogue,
        out_elem_bytes=out_elem_bytes, split_k=split_k,
    )

    # ---- shared memory ----------------------------------------------------
    k_pad = ceil_div(gemm.k, tiling.k_tile) * tiling.k_tile
    k_pad_block = ceil_div(ceil_div(k_pad, split_k), tiling.k_tile) * tiling.k_tile
    # every warp re-reads its A/B fragments from the staged tiles: warps in
    # the same block row share B columns and warps in the same column share
    # A rows, so the per-block LDS traffic is (bcw*MTile + brw*NTile)*K
    frag_bytes_per_block = (
        tiling.block_col_warps * tiling.m_tile
        + tiling.block_row_warps * tiling.n_tile
    ) * k_pad_block * elem
    smem_bytes_total = blocks * frag_bytes_per_block
    # without the Fig. 5 reordering each 16 bytes take four LDS.32 issue
    # slots instead of one LDS.128 — the path becomes instruction-bound
    smem_bw = device.smem_bytes_per_cycle if reorder_smem else 24.0
    active_sms = min(blocks, device.sm_count)
    smem = smem_bytes_total / (smem_bw * active_sms)

    launch = _launch_cycles(device, split_k)
    if obs_trace.active():
        # one profile run of the pipeline model; per-call detail is gated
        # because this is the autotuner's innermost hot function (the
        # vector path in repro.gpu.vecmodel records batched, ungated)
        obs_metrics.counter(
            "gpu_profile_runs", bits=bits, pricing_mode="scalar"
        ).inc()
    return GpuKernelPerf(
        gemm=gemm,
        tiling=tiling,
        bits=bits,
        compute_cycles=compute,
        dram_cycles=dram,
        smem_cycles=smem,
        launch_cycles=launch,
        blocks=blocks,
        blocks_per_sm=bps,
        occupancy=occupancy,
        overlapped=double_buffer,
    )


def conv_gemm_shape(spec: ConvSpec) -> GemmShape:
    """The implicit GEMM problem of an NHWC convolution."""
    return GemmShape(
        m=spec.batch * spec.out_spatial, k=spec.gemm_k, n=spec.out_channels
    )


def conv_time(
    spec: ConvSpec,
    bits: int,
    tiling: TilingParams | None = None,
    **kwargs,
) -> GpuKernelPerf:
    """Kernel time for a convolution layer (thin wrapper over
    :func:`kernel_time` on the layer's implicit-GEMM shape)."""
    perf = kernel_time(conv_gemm_shape(spec), bits, tiling, **kwargs)
    # per-layer cycle entry from the GPU pipeline model (profile surface)
    obs_metrics.gauge(
        "gpu_conv_cycles", layer=spec.name, bits=bits
    ).set(perf.total_cycles)
    return perf
