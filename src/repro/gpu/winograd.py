"""Winograd F(2x2, 3x3) on the GPU — the road the paper did not take.

The paper applies winograd only on ARM (Sec. 3.4).  On Turing the trade
changes: tensor cores make multiplies cheap relative to memory, while the
transform stages are bandwidth-bound element-wise kernels and the
transform-domain GEMMs have K = Cin only (poor tensor-core utilization per
block).  This module prices the GPU winograd pipeline with the same
machine model so the decision is quantified rather than asserted:

* input transform — bandwidth kernel: read the activation, write the 16
  per-position operand matrices (4x the activation volume);
* 16 batched transform-domain GEMMs of shape ``(batch*tiles, Cin, Cout)``;
* output transform — bandwidth kernel over 16 -> 4 elements per tile;
* the transformed *ranges* still apply: int8 storage of the transformed
  input caps the approach at <= 6-bit operands, as on ARM — for the 8-bit
  Tensor-Core path the transformed data must widen, which this model
  charges as 2-byte traffic.

Functional semantics are shared with :func:`repro.conv.winograd.
conv2d_winograd` (layout-transposed), so no second implementation exists
to drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..conv.winograd import winograd_range_report
from ..errors import ShapeError
from ..types import ConvSpec, GemmShape, Layout
from ..util import ceil_div
from .autotune import autotune
from .device import GpuDevice, TU102
from .fusion import elementwise_kernel_cycles
from .pipelinemodel import conv_gemm_shape
from .tiling import TilingParams


@dataclass(frozen=True)
class GpuWinogradPerf:
    """Cycle breakdown of the GPU winograd pipeline for one layer."""

    spec_name: str
    bits: int
    transform_in_cycles: float
    gemm_cycles: float
    transform_out_cycles: float
    gemm_tiling: TilingParams

    @property
    def total_cycles(self) -> float:
        return (self.transform_in_cycles + self.gemm_cycles
                + self.transform_out_cycles)

    def microseconds(self, device: GpuDevice = TU102) -> float:
        return device.microseconds(self.total_cycles)


def gpu_winograd_time(
    spec: ConvSpec,
    bits: int = 8,
    *,
    device: GpuDevice = TU102,
) -> GpuWinogradPerf:
    """Price the F(2x2,3x3) pipeline on the GPU model (autotuned GEMM)."""
    if not spec.is_winograd_eligible():
        raise ShapeError(f"{spec.name} is not 3x3/s1; winograd inapplicable")
    n_tiles = (ceil_div(spec.out_height, 2) * ceil_div(spec.out_width, 2)
               * spec.batch)
    # transformed operands exceed int8 above 6-bit: widen to 2 bytes
    elem = 1.0 if winograd_range_report(min(bits, 8)).fits_int8 else 2.0

    in_bytes = spec.input_elems * 1.0
    v_bytes = 16 * spec.in_channels * n_tiles * elem
    tf_in = elementwise_kernel_cycles(in_bytes, v_bytes, device=device)

    # 16 per-position GEMMs batched into one launch: same MAC volume as a
    # single GEMM with 16x the M dimension (K = Cin only)
    gemm = GemmShape(m=16 * n_tiles, k=spec.in_channels, n=spec.out_channels)
    tuned = autotune(gemm, 8 if bits > 4 else 4, device=device)
    gemm_cycles = tuned.best_cycles

    m_bytes = 16 * spec.out_channels * n_tiles * 4.0  # int32 products
    out_bytes = spec.output_elems * 1.0
    tf_out = elementwise_kernel_cycles(m_bytes, out_bytes, device=device)

    return GpuWinogradPerf(
        spec_name=spec.name,
        bits=bits,
        transform_in_cycles=tf_in,
        gemm_cycles=gemm_cycles,
        transform_out_cycles=tf_out,
        gemm_tiling=tuned.best,
    )


def winograd_vs_implicit(
    spec: ConvSpec, bits: int = 8, *, device: GpuDevice = TU102
) -> dict[str, float]:
    """Head-to-head: GPU winograd vs the paper's implicit GEMM, cycles."""
    wino = gpu_winograd_time(spec, bits, device=device)
    implicit = autotune(conv_gemm_shape(spec), bits, device=device)
    return {
        "winograd_cycles": wino.total_cycles,
        "implicit_cycles": implicit.best_cycles,
        "winograd_over_implicit": wino.total_cycles / implicit.best_cycles,
    }
