"""Block-level GPU kernel simulator: Alg. 2 as an executable program.

Where :mod:`repro.gpu.implicit_gemm` computes the kernel's *semantics*
directly, this module builds the kernel as an explicit **block program** —
the statement sequence one thread block executes, staging tiles through a
register buffer and shared memory exactly as Fig. 6 lays out:

    I    GLD   stage next A/B tiles from global memory into the register
               temporal buffer (overlaps with IV under double buffering)
    II   STS   spill the register buffer into shared memory
    sync BAR   __syncthreads
    III  LDS   each warp loads its A/B fragments from shared memory
    IV   MMA   tensor-core fragment multiply-accumulate
    end  EPI   in-place bias/requant + STG of the C fragments

The program is *executed* two ways:

* functionally (:func:`execute_block_program`) — data really moves
  gld-buffer -> smem -> fragments -> accumulators, so tile/fragment
  indexing bugs cannot hide (tests pin the result to the direct conv);
* temporally (:func:`schedule_block_program`) — an event-driven two-pipe
  scheduler (memory pipe, tensor pipe) honoring the dependencies and
  barriers, which reproduces the Fig. 6 overlap claim mechanically and
  cross-validates the closed-form model in :mod:`repro.gpu.pipelinemodel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ShapeError, SimulationError
from ..types import ConvSpec, GemmShape, Layout
from ..util import ceil_div
from .device import GpuDevice, TU102
from .mma import mma_shape
from .precompute import PrecomputedOffsets, build_offsets
from .tiling import TilingParams, validate_tiling

#: block-program opcodes
OPS = ("GLD_A", "GLD_B", "STS_A", "STS_B", "BAR", "LDS_FRAG", "MMA", "EPI")


@dataclass(frozen=True)
class BlockInstr:
    """One block-level statement."""

    op: str
    #: which k_outer iteration's tile this statement touches
    k_iter: int = 0
    #: warp coordinates for warp-granular statements (LDS/MMA)
    warp: tuple[int, int] | None = None
    #: mma coordinates within the warp fragment
    frag: tuple[int, int, int] | None = None  #: (fm, fn, k_lo)
    #: which of the two staging buffers this statement uses
    stage: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise SimulationError(f"unknown block op {self.op!r}")


def generate_block_program(
    tiling: TilingParams,
    bits: int,
    k_iters: int,
    *,
    double_buffer: bool = True,
) -> list[BlockInstr]:
    """The statement stream of one thread block over ``k_iters`` K tiles.

    With double buffering, iteration ``i+1``'s GLD statements are emitted
    *before* iteration ``i``'s MMAs (they fill the alternate staging
    buffer), which is what lets the scheduler overlap them; without it,
    every iteration serializes GLD -> STS -> sync -> LDS -> MMA.
    """
    if k_iters <= 0:
        raise ShapeError(f"k_iters must be positive, got {k_iters}")
    mm, nn, kk = mma_shape(bits)
    out: list[BlockInstr] = []

    def emit_gld(i: int) -> None:
        s = i % 2 if double_buffer else 0
        out.append(BlockInstr("GLD_A", k_iter=i, stage=s))
        out.append(BlockInstr("GLD_B", k_iter=i, stage=s))

    def emit_compute(i: int) -> None:
        s = i % 2 if double_buffer else 0
        out.append(BlockInstr("STS_A", k_iter=i, stage=s))
        out.append(BlockInstr("STS_B", k_iter=i, stage=s))
        out.append(BlockInstr("BAR", k_iter=i))
        for wr in range(tiling.block_row_warps):
            for wc in range(tiling.block_col_warps):
                warp = (wr, wc)
                out.append(BlockInstr("LDS_FRAG", k_iter=i, warp=warp, stage=s))
                for k_lo in range(0, tiling.k_tile, kk):
                    for fm in range(0, tiling.m_frag, mm):
                        for fn in range(0, tiling.n_frag, nn):
                            out.append(BlockInstr(
                                "MMA", k_iter=i, warp=warp,
                                frag=(fm, fn, k_lo), stage=s,
                            ))

    if double_buffer:
        emit_gld(0)
        for i in range(k_iters):
            if i + 1 < k_iters:
                emit_gld(i + 1)  # stage I for the next iteration (Fig. 6)
            emit_compute(i)
    else:
        for i in range(k_iters):
            emit_gld(i)
            emit_compute(i)
    out.append(BlockInstr("EPI", k_iter=k_iters - 1))
    return out


# ---------------------------------------------------------------------------
# Functional execution
# ---------------------------------------------------------------------------


@dataclass
class _BlockState:
    """Architectural state of one simulated thread block."""

    reg_a: dict[int, np.ndarray] = field(default_factory=dict)  #: stage -> tile
    reg_b: dict[int, np.ndarray] = field(default_factory=dict)
    smem_a: dict[int, np.ndarray] = field(default_factory=dict)
    smem_b: dict[int, np.ndarray] = field(default_factory=dict)
    frags: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )  #: warp -> (a_frag_tile, b_frag_tile) views of smem
    acc: np.ndarray | None = None


def execute_block_program(
    program: list[BlockInstr],
    tiling: TilingParams,
    bits: int,
    *,
    gather_a,  # Callable[[int], np.ndarray]: k_iter -> (MTile, KTile) int8
    slice_b,  # Callable[[int], np.ndarray]: k_iter -> (KTile, NTile) int8
) -> np.ndarray:
    """Run one block's program; returns its int64 ``(MTile, NTile)`` tile.

    Data flows through the staging buffers exactly as written: an MMA can
    only see values that passed GLD -> STS -> LDS for its iteration.
    """
    from .mma import mma_m8n8k16_int8, mma_m8n8k32_int4

    mma = mma_m8n8k16_int8 if bits == 8 else mma_m8n8k32_int4
    mm, nn, kk = mma_shape(bits)
    st = _BlockState(acc=np.zeros((tiling.m_tile, tiling.n_tile), dtype=np.int64))
    synced_stage: dict[int, int] = {}  # stage -> k_iter whose data is visible

    for ins in program:
        if ins.op == "GLD_A":
            st.reg_a[ins.stage] = gather_a(ins.k_iter)
        elif ins.op == "GLD_B":
            st.reg_b[ins.stage] = slice_b(ins.k_iter)
        elif ins.op == "STS_A":
            st.smem_a[ins.stage] = st.reg_a[ins.stage].copy()
        elif ins.op == "STS_B":
            st.smem_b[ins.stage] = st.reg_b[ins.stage].copy()
        elif ins.op == "BAR":
            for stage, tile in st.smem_a.items():
                synced_stage[stage] = ins.k_iter
        elif ins.op == "LDS_FRAG":
            if synced_stage.get(ins.stage) != ins.k_iter:
                raise SimulationError(
                    f"LDS before barrier for k_iter {ins.k_iter}"
                )
            wr, wc = ins.warp
            fr, fc = wr * tiling.m_frag, wc * tiling.n_frag
            a = st.smem_a[ins.stage][fr : fr + tiling.m_frag, :]
            b = st.smem_b[ins.stage][:, fc : fc + tiling.n_frag]
            st.frags[ins.warp] = (a.copy(), b.copy())
        elif ins.op == "MMA":
            wr, wc = ins.warp
            a, b = st.frags[ins.warp]
            fm, fn, k_lo = ins.frag
            d = mma(a[fm : fm + mm, k_lo : k_lo + kk],
                    b[k_lo : k_lo + kk, fn : fn + nn])
            fr, fc = wr * tiling.m_frag, wc * tiling.n_frag
            st.acc[fr + fm : fr + fm + mm, fc + fn : fc + fn + nn] += d
        elif ins.op == "EPI":
            pass  # epilogue applied by the caller on the returned tile
        else:  # pragma: no cover
            raise SimulationError(f"unhandled block op {ins.op}")
    return st.acc


def simulate_conv_block(
    spec: ConvSpec,
    x_nhwc: np.ndarray,
    w_oihw: np.ndarray,
    tiling: TilingParams,
    bits: int,
    *,
    m0: int = 0,
    n0: int = 0,
    double_buffer: bool = True,
    offsets: PrecomputedOffsets | None = None,
) -> np.ndarray:
    """Execute one C block tile of a convolution through the block program."""
    from ..conv.im2col import weight_matrix

    validate_tiling(tiling, bits, double_buffer=double_buffer)
    offsets = offsets or build_offsets(spec)
    b_full = weight_matrix(spec, w_oihw, layout=Layout.NHWC).T.copy()
    gemm = GemmShape(m=spec.batch * spec.out_spatial, k=spec.gemm_k,
                     n=spec.out_channels)
    k_iters = ceil_div(gemm.k, tiling.k_tile)
    pixels_per_img = spec.out_spatial

    def gather_a(k_iter: int) -> np.ndarray:
        from .implicit_gemm import _gather_a_tile

        return _gather_a_tile(spec, x_nhwc, offsets, m0,
                              k_iter * tiling.k_tile, tiling, gemm,
                              pixels_per_img)

    def slice_b(k_iter: int) -> np.ndarray:
        from .implicit_gemm import _slice_b_tile

        return _slice_b_tile(b_full, k_iter * tiling.k_tile, n0, tiling, gemm)

    program = generate_block_program(tiling, bits, k_iters,
                                     double_buffer=double_buffer)
    return execute_block_program(program, tiling, bits,
                                 gather_a=gather_a, slice_b=slice_b)


# ---------------------------------------------------------------------------
# Temporal (event-driven) scheduling
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockSchedule:
    """Timing outcome of one block program."""

    cycles: float
    mem_busy: float
    tensor_busy: float
    smem_busy: float
    overlap_cycles: float  #: memory-pipe cycles hidden under compute

    @property
    def mem_utilization(self) -> float:
        return self.mem_busy / self.cycles if self.cycles else 0.0


def schedule_block_program(
    program: list[BlockInstr],
    tiling: TilingParams,
    bits: int,
    *,
    device: GpuDevice = TU102,
    active_blocks_per_sm: int = 1,
    reorder_smem: bool = True,
    l2_service: float = 3.0,
) -> BlockSchedule:
    """Event-driven schedule of one block on one SM's pipes.

    Three resources: the memory pipe (global loads + stores), the shared-
    memory pipe (STS/LDS), the tensor pipe (MMA).  A statement starts when
    its resource is free *and* its dependencies completed: STS needs the
    matching GLD, LDS needs the barrier, MMA needs its warp's LDS, and the
    barrier needs the STS of its iteration.  Per-SM global bandwidth is the
    device bandwidth divided across SMs and concurrent blocks, boosted by
    ``l2_service``: neighboring blocks along a GEMM row/column share their
    A/B tiles, so most GLDs are L2 hits rather than DRAM fetches.
    """
    elem = bits / 8
    mm, nn, kk = mma_shape(bits)
    gmem_bw = (device.dram_bytes_per_cycle * l2_service
               / device.sm_count / active_blocks_per_sm)
    smem_bw = device.smem_bytes_per_cycle / active_blocks_per_sm
    if not reorder_smem:
        smem_bw /= 4.0  # LDS.32 storm (Fig. 5)
    tc_rate = device.mac_rate(bits) / active_blocks_per_sm

    a_bytes = tiling.m_tile * tiling.k_tile * elem
    b_bytes = tiling.k_tile * tiling.n_tile * elem
    frag_bytes = (tiling.m_frag * tiling.k_tile
                  + tiling.k_tile * tiling.n_frag) * elem
    mma_cycles = (mm * nn * kk) / tc_rate

    mem_free = smem_free = tensor_free = 0.0
    mem_busy = smem_busy = tensor_busy = 0.0
    gld_done: dict[tuple[str, int], float] = {}
    sts_done: dict[tuple[str, int], float] = {}
    stage_free: dict[tuple[str, int], float] = {}  #: WAR: staging regs reusable
    bar_done: dict[int, float] = {}
    lds_done: dict[tuple[tuple[int, int], int], float] = {}
    gmem_latency = 300.0  # cycles: the latency double buffering hides

    def run(resource_free: float, ready: float, duration: float) -> tuple[float, float]:
        start = max(resource_free, ready)
        return start, start + duration

    end = 0.0
    for ins in program:
        if ins.op in ("GLD_A", "GLD_B"):
            dur = (a_bytes if ins.op == "GLD_A" else b_bytes) / gmem_bw
            # WAR on the staging registers: a single-buffered kernel cannot
            # start the next tile's load until the previous STS drained the
            # buffer — the serialization Fig. 6's double buffer removes
            war = stage_free.get((ins.op[-1], ins.stage), 0.0)
            start, done = run(mem_free, war, dur)
            mem_free = done
            mem_busy += dur
            gld_done[(ins.op[-1], ins.k_iter)] = done + gmem_latency
        elif ins.op in ("STS_A", "STS_B"):
            dep = gld_done[(ins.op[-1], ins.k_iter)]
            dur = (a_bytes if ins.op == "STS_A" else b_bytes) / smem_bw
            start, done = run(smem_free, dep, dur)
            smem_free = done
            smem_busy += dur
            sts_done[(ins.op[-1], ins.k_iter)] = done
            stage_free[(ins.op[-1], ins.stage)] = done
        elif ins.op == "BAR":
            dep = max(sts_done.get(("A", ins.k_iter), 0.0),
                      sts_done.get(("B", ins.k_iter), 0.0),
                      tensor_free)  # all warps must arrive
            bar_done[ins.k_iter] = dep
        elif ins.op == "LDS_FRAG":
            dep = bar_done[ins.k_iter]
            dur = frag_bytes / smem_bw
            start, done = run(smem_free, dep, dur)
            smem_free = done
            smem_busy += dur
            lds_done[(ins.warp, ins.k_iter)] = done
        elif ins.op == "MMA":
            dep = lds_done[(ins.warp, ins.k_iter)]
            start, done = run(tensor_free, dep, mma_cycles)
            tensor_free = done
            tensor_busy += mma_cycles
        elif ins.op == "EPI":
            out_bytes = tiling.m_tile * tiling.n_tile * elem
            dur = out_bytes / gmem_bw
            start, done = run(mem_free, tensor_free, dur)
            mem_free = done
            mem_busy += dur
        end = max(end, mem_free, smem_free, tensor_free)

    serial = mem_busy + smem_busy + tensor_busy
    return BlockSchedule(
        cycles=end,
        mem_busy=mem_busy,
        tensor_busy=tensor_busy,
        smem_busy=smem_busy,
        overlap_cycles=max(0.0, serial - end),
    )
