"""Profile-run auto-search over tiling parameters (Sec. 5.1 / Fig. 11).

"To determine the optimal tiling parameters ... we use C++ template to
generate multiple kernels with different combinations of tiling parameters
and choose the best ones through profile runs."  Here a profile run is an
evaluation of the performance simulator; the search is the same exhaustive
sweep over legal template instantiations, and it is cached per GEMM shape
("the optimal tiling parameters only need to be determined once per
convolution shape").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AutotuneError
from ..types import ConvSpec, GemmShape
from .device import GpuDevice, TU102
from .pipelinemodel import GpuKernelPerf, conv_gemm_shape, kernel_time
from .tiling import TilingParams, search_space


@dataclass(frozen=True)
class AutotuneResult:
    """Best configuration found by the profile sweep."""

    gemm: GemmShape
    bits: int
    best: TilingParams
    best_perf: GpuKernelPerf
    candidates: int

    @property
    def best_cycles(self) -> float:
        return self.best_perf.total_cycles


_CACHE: dict[tuple, AutotuneResult] = {}


def autotune(
    gemm: GemmShape,
    bits: int,
    *,
    device: GpuDevice = TU102,
    **kernel_kwargs,
) -> AutotuneResult:
    """Sweep every legal tiling, profile each, return the fastest."""
    key = (gemm, bits, device.name, tuple(sorted(kernel_kwargs.items())))
    if key in _CACHE:
        return _CACHE[key]
    best: TilingParams | None = None
    best_perf: GpuKernelPerf | None = None
    count = 0
    for tiling in search_space(bits, device=device):
        count += 1
        perf = kernel_time(gemm, bits, tiling, device=device, **kernel_kwargs)
        if best_perf is None or perf.total_cycles < best_perf.total_cycles:
            best, best_perf = tiling, perf
    if best is None or best_perf is None:
        raise AutotuneError(f"no legal tiling for {gemm} at {bits}-bit")
    result = AutotuneResult(
        gemm=gemm, bits=bits, best=best, best_perf=best_perf, candidates=count
    )
    _CACHE[key] = result
    return result


def autotune_conv(
    spec: ConvSpec, bits: int, *, device: GpuDevice = TU102, **kernel_kwargs
) -> AutotuneResult:
    return autotune(conv_gemm_shape(spec), bits, device=device, **kernel_kwargs)
