"""Profile-run auto-search over tiling parameters (Sec. 5.1 / Fig. 11).

"To determine the optimal tiling parameters ... we use C++ template to
generate multiple kernels with different combinations of tiling parameters
and choose the best ones through profile runs."  Here a profile run is an
evaluation of the performance simulator; the search covers the same
exhaustive grid of legal template instantiations, and the result is cached
per GEMM shape ("the optimal tiling parameters only need to be determined
once per convolution shape").

Three layers make the search fast without changing its answer:

* **branch-and-bound pruning** — candidates are sorted by the admissible
  :func:`~repro.gpu.pipelinemodel.kernel_lower_bound` (compute-only and
  bandwidth-only floors); once the incumbent beats every remaining bound
  the sweep stops.  The bound never exceeds the achieved time, so the
  winner — including the tie-break on search-space order — is identical
  to the exhaustive sweep's;
* **vectorized candidate pricing** — by default the whole population is
  priced through :mod:`repro.gpu.vecmodel`'s structure-of-arrays twin of
  the cost model (bit-identical per element): one batched call for every
  lower bound, then numpy-sized pricing batches with the pruning cutoff
  applied as an array mask.  ``REPRO_NO_VECTOR=1`` (or any fault plan
  targeting ``autotune.profile``) falls back to the scalar engine below;
* **parallel evaluation** — in the scalar engine, fixed-size candidate
  chunks fan out through :class:`repro.perf.ParallelRunner` and merge by
  input index, so any worker count produces bit-identical results
  (``REPRO_JOBS`` overrides);
* **a persistent content-addressed cache** — results are memoized on disk
  (:class:`repro.perf.PersistentCache`, ``REPRO_CACHE_DIR`` overrides the
  location) keyed by a :func:`repro.perf.stable_hash` of shape, bits,
  device, kernel kwargs *and a fingerprint of the cost-model code*, so
  editing the model invalidates stale entries.

A fourth layer keeps long sweeps alive when individual profile runs
misbehave (TVM-style candidate isolation — Cowan et al. survive thousands
of failing template instantiations by skipping them):

* **hardened profile runs** — every candidate evaluation goes through
  :func:`repro.resilience.policy.call_with_policy`: per-attempt timeout
  (``REPRO_TIMEOUT_S``), bounded retry with exponential backoff
  (``REPRO_RETRY`` / ``REPRO_BACKOFF_S``), and the deterministic
  ``autotune.profile`` fault-injection site.  A candidate that fails
  permanently lands in a :class:`~repro.resilience.policy.Quarantine`
  (skipped by this and every later sweep in the process), the search
  continues over the survivors, and the result carries a ``skipped``
  tally — the sweep is *never* silently empty: if every candidate dies
  the sweep raises :class:`~repro.errors.AutotuneError`.  When retries
  absorb every (transient) fault, the winner and its cycle count are
  bit-identical to the fault-free sweep — the chaos suite asserts it.

``autotune_reference`` keeps the original single-threaded exhaustive loop
as the equivalence baseline for tests and ``python -m repro bench``; its
profile runs wear the same retry armor so a seeded chaos plan cannot
kill the baseline either.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass

import numpy as np

from ..errors import AutotuneError
from ..obs import flight as obs_flight
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..perf.cache import PersistentCache, code_fingerprint, stable_hash
from ..perf.parallel import ParallelRunner
from ..resilience import faults as res_faults
from ..resilience.policy import (
    ExecPolicy,
    PermanentFailure,
    Quarantine,
    call_with_policy,
)
from ..types import ConvSpec, GemmShape
from ..util import vector_enabled
from .device import GpuDevice, TU102
from .pipelinemodel import GpuKernelPerf, conv_gemm_shape, kernel_lower_bound, kernel_time
from .tiling import TilingParams, search_space, search_space_size
from .vecmodel import TilingArrays, kernel_lower_bound_batch, kernel_time_batch

#: candidates evaluated per parallel round of the *scalar* engine.  Fixed
#: (never derived from the worker count) so candidate/pruned tallies are
#: identical for any jobs setting; pruning is re-checked between rounds.
_CHUNK = 16

#: the vector engine's first round: small enough that the incumbent it
#: establishes (from the best-bound candidates) prunes most of the space,
#: large enough to amortize one numpy dispatch
_VEC_CHUNK_INIT = 64

#: candidates priced per numpy batch after the incumbent exists
_VEC_CHUNK = 2048


@dataclass(frozen=True)
class AutotuneResult:
    """Best configuration found by the profile sweep.

    ``candidates`` counts the legal search space; ``evaluated`` the
    profile runs actually performed, ``pruned`` the candidates skipped
    because their lower bound already exceeded the incumbent, and
    ``skipped`` the candidates dropped because their profile runs failed
    permanently (quarantined — see the module docstring).
    ``evaluated + pruned + skipped == candidates``; a clean exhaustive
    sweep has ``pruned == skipped == 0``.
    """

    gemm: GemmShape
    bits: int
    best: TilingParams
    best_perf: GpuKernelPerf
    candidates: int
    evaluated: int = 0
    pruned: int = 0
    skipped: int = 0

    @property
    def best_cycles(self) -> float:
        return self.best_perf.total_cycles

    def to_json(self) -> dict:
        p = self.best_perf
        return {
            "gemm": [self.gemm.m, self.gemm.k, self.gemm.n],
            "bits": self.bits,
            "best": _tiling_to_json(self.best),
            "best_perf": {
                "tiling": _tiling_to_json(p.tiling),
                "bits": p.bits,
                "compute_cycles": p.compute_cycles,
                "dram_cycles": p.dram_cycles,
                "smem_cycles": p.smem_cycles,
                "launch_cycles": p.launch_cycles,
                "blocks": p.blocks,
                "blocks_per_sm": p.blocks_per_sm,
                "occupancy": p.occupancy,
                "overlapped": p.overlapped,
            },
            "candidates": self.candidates,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "skipped": self.skipped,
        }

    @classmethod
    def from_json(cls, data: dict) -> "AutotuneResult":
        gemm = GemmShape(*(int(v) for v in data["gemm"]))
        perf = data["best_perf"]
        best_perf = GpuKernelPerf(
            gemm=gemm,
            tiling=_tiling_from_json(perf["tiling"]),
            bits=int(perf["bits"]),
            compute_cycles=float(perf["compute_cycles"]),
            dram_cycles=float(perf["dram_cycles"]),
            smem_cycles=float(perf["smem_cycles"]),
            launch_cycles=float(perf["launch_cycles"]),
            blocks=int(perf["blocks"]),
            blocks_per_sm=int(perf["blocks_per_sm"]),
            occupancy=float(perf["occupancy"]),
            overlapped=bool(perf["overlapped"]),
        )
        return cls(
            gemm=gemm,
            bits=int(data["bits"]),
            best=_tiling_from_json(data["best"]),
            best_perf=best_perf,
            candidates=int(data["candidates"]),
            evaluated=int(data["evaluated"]),
            pruned=int(data["pruned"]),
            skipped=int(data.get("skipped", 0)),
        )


def _tiling_to_json(t: TilingParams) -> list[int]:
    return [t.m_tile, t.n_tile, t.k_tile, t.k_step,
            t.block_row_warps, t.block_col_warps]


def _tiling_from_json(v: list) -> TilingParams:
    return TilingParams(*(int(x) for x in v))


# ---------------------------------------------------------------------------
# Caches and options
# ---------------------------------------------------------------------------

_MEM_CACHE: dict[str, AutotuneResult] = {}
_SPACE_CACHE: dict[tuple[int, GpuDevice], tuple[list[TilingParams], TilingArrays]] = {}
_STORE = PersistentCache("gpu-autotune")
_QUARANTINE = Quarantine("autotune.profile")
_LOCK = threading.Lock()

_FINGERPRINT: str | None = None


def _code_version() -> str:
    global _FINGERPRINT
    if _FINGERPRINT is None:
        from . import device, mma, pipelinemodel, tiling, vecmodel

        import sys

        _FINGERPRINT = code_fingerprint(
            [tiling, pipelinemodel, vecmodel, device, mma, sys.modules[__name__]]
        )
    return _FINGERPRINT


def pricing_mode() -> str:
    """``"vector"`` when sweeps may batch-price through numpy, else
    ``"scalar"``.

    Scalar is forced by ``REPRO_NO_VECTOR`` (the fallback env switch) and
    whenever the active fault plan targets the ``autotune.profile`` site:
    injected faults are per-candidate-key decisions inside the retry
    boundary, which only the scalar guarded path can honor, so a chaos
    run degrades to per-candidate pricing instead of silently skipping
    its own fault rules.
    """
    if not vector_enabled():
        return "scalar"
    if any(r.matches("autotune.profile") for r in res_faults.active_plan().rules):
        return "scalar"
    return "vector"


def clear_cache(*, persistent: bool = False) -> None:
    """Drop memoized autotune results (the in-process cache always; the
    on-disk store too with ``persistent=True``) and release quarantined
    candidates.  Public for tests and the bench harness."""
    with _LOCK:
        _MEM_CACHE.clear()
    _QUARANTINE.clear()
    if persistent:
        _STORE.clear()


def cache_store() -> PersistentCache:
    """The persistent store (exposed for stats/bench introspection)."""
    return _STORE


def profile_quarantine() -> Quarantine:
    """Candidates whose profile runs failed permanently this process
    (exposed for chaos tests and the ``repro chaos`` report)."""
    return _QUARANTINE


@dataclass(frozen=True)
class AutotuneOptions:
    """Session-wide search-engine switches (see :func:`autotune_options`).

    ``engine=False`` routes every :func:`autotune` call through
    :func:`autotune_reference` (memoized in-process only) — the bench
    harness uses it to time the pre-optimization serial path faithfully.
    """

    prune: bool = True
    persistent: bool = True
    jobs: int | None = None
    engine: bool = True


_OPTIONS = AutotuneOptions()


@contextlib.contextmanager
def autotune_options(
    *,
    prune: bool | None = None,
    persistent: bool | None = None,
    jobs: int | None = None,
    engine: bool | None = None,
):
    """Temporarily override engine defaults (bench/tests); thread-hostile
    by design — configure before fanning out, not inside workers."""
    global _OPTIONS
    prev = _OPTIONS
    _OPTIONS = AutotuneOptions(
        prune=prev.prune if prune is None else prune,
        persistent=prev.persistent if persistent is None else persistent,
        jobs=prev.jobs if jobs is None else jobs,
        engine=prev.engine if engine is None else engine,
    )
    try:
        yield _OPTIONS
    finally:
        _OPTIONS = prev


def _legal_candidates(
    bits: int, device: GpuDevice
) -> tuple[list[TilingParams], TilingArrays]:
    """The legal search space plus its SoA decomposition, memoized per
    (bits, device) — legality does not depend on the GEMM shape, so
    validating (and columnizing) it once per process is free speedup for
    every per-layer sweep."""
    key = (bits, device)
    with _LOCK:
        entry = _SPACE_CACHE.get(key)
    if entry is None:
        space = list(search_space(bits, device=device))
        entry = (space, TilingArrays.from_params(space))
        with _LOCK:
            entry = _SPACE_CACHE.setdefault(key, entry)
    return entry


def _no_legal_tiling_error(
    gemm: GemmShape, bits: int, device: GpuDevice
) -> AutotuneError:
    return AutotuneError(
        f"no legal tiling for {gemm} at {bits}-bit on {device.name}: "
        f"0 of {search_space_size(bits)} template instantiations fit the "
        f"device limits"
    )


# ---------------------------------------------------------------------------
# Search engines
# ---------------------------------------------------------------------------


def _candidate_key(gemm: GemmShape, bits: int, tiling: TilingParams) -> str:
    """Stable quarantine/fault key for one profile run."""
    return (f"{gemm.m}x{gemm.k}x{gemm.n}/{bits}b/"
            f"{'-'.join(str(v) for v in _tiling_to_json(tiling))}")


def _guarded_profile(
    gemm: GemmShape,
    bits: int,
    tiling: TilingParams,
    device: GpuDevice,
    policy: ExecPolicy,
    kernel_kwargs: dict,
) -> GpuKernelPerf | None:
    """One profile run under the hardened policy.

    Returns ``None`` when the candidate is (or becomes) quarantined:
    already-quarantined candidates are skipped for free, and a run that
    exhausts its retries quarantines the candidate so later sweeps never
    pay for it again.  Transient failures absorbed by a retry leave no
    trace in the result — the winner is identical to a fault-free sweep.
    """
    key = _candidate_key(gemm, bits, tiling)
    if _QUARANTINE.contains(key):
        obs_metrics.counter("autotune_skipped", reason="quarantined").inc()
        return None

    def attempt() -> GpuKernelPerf:
        # inside the retry boundary so a transient injected fault is
        # re-rolled (its `times` budget drains) on the next attempt
        res_faults.inject("autotune.profile", key=key)
        return kernel_time(gemm, bits, tiling, device=device, **kernel_kwargs)

    try:
        return call_with_policy(
            attempt, site="autotune.profile", key=key, policy=policy)
    except PermanentFailure as exc:
        _QUARANTINE.add(key, reason=f"{type(exc.last).__name__}: {exc.last}")
        obs_metrics.counter("autotune_skipped", reason="failed").inc()
        return None


def _search_scalar(
    gemm: GemmShape,
    bits: int,
    space: list[TilingParams],
    device: GpuDevice,
    *,
    prune: bool,
    jobs: int | None,
    kernel_kwargs: dict,
) -> AutotuneResult:
    """Best-bound-first sweep with exact pruning and deterministic merge.

    Candidates are profiled in ascending lower-bound order, ``_CHUNK`` at
    a time (parallel inside a chunk, merged by index).  Between chunks the
    incumbent is compared against the next-smallest remaining bound: once
    ``bound > incumbent`` holds there, it holds for every remaining
    candidate, each of which must then be *strictly* slower — so pruning
    can change neither the winner nor the first-in-search-order tie-break
    (ties are resolved by original candidate index, exactly like the
    serial loop's strict-improvement scan).
    """
    with obs_trace.span(
        "autotune.search",
        gemm=f"{gemm.m}x{gemm.k}x{gemm.n}", bits=bits, candidates=len(space),
    ):
        bounds = [
            kernel_lower_bound(gemm, bits, t, device=device, **kernel_kwargs)
            for t in space
        ]
        order = sorted(range(len(space)), key=lambda i: (bounds[i], i))
        runner = ParallelRunner(jobs)
        policy = ExecPolicy.resolve()

        def profile(i: int) -> GpuKernelPerf | None:
            return _guarded_profile(
                gemm, bits, space[i], device, policy, kernel_kwargs)

        # per-candidate bound-gap detail only while a tracer is installed:
        # observing one histogram per profile run is wasted work otherwise
        observe_gaps = obs_trace.active()
        best_key: tuple[float, int] | None = None
        best_perf: GpuKernelPerf | None = None
        evaluated = 0
        skipped = 0
        pos = 0
        while pos < len(order):
            if prune and best_key is not None and bounds[order[pos]] > best_key[0]:
                break  # sorted bounds: every remaining candidate is slower
            chunk = order[pos:pos + _CHUNK]
            pos += len(chunk)
            for i, perf in zip(chunk, runner.map(profile, chunk, chunksize=4)):
                if perf is None:  # quarantined: search the survivors
                    skipped += 1
                    continue
                evaluated += 1
                if observe_gaps:
                    obs_metrics.histogram(
                        "autotune_bound_gap_cycles", bits=bits
                    ).observe(perf.total_cycles - bounds[i])
                key = (perf.total_cycles, i)
                if best_key is None or key < best_key:
                    best_key, best_perf = key, perf
        if best_perf is None:
            # never silently empty: every candidate failed or was skipped
            raise AutotuneError(
                f"autotune sweep for {gemm} at {bits}-bit on {device.name} "
                f"produced no survivor: {skipped} of {len(space)} candidates "
                f"failed permanently (quarantined)"
            )
        result = AutotuneResult(
            gemm=gemm,
            bits=bits,
            best=best_perf.tiling,
            best_perf=best_perf,
            candidates=len(space),
            evaluated=evaluated,
            pruned=len(space) - evaluated - skipped,
            skipped=skipped,
        )
        # inside the span: the flight-ring marker attaches to the search
        _count_sweep(result, engine="pruned")
    return result


def _search_vector(
    gemm: GemmShape,
    bits: int,
    space: list[TilingParams],
    arrays: TilingArrays,
    device: GpuDevice,
    *,
    prune: bool,
    kernel_kwargs: dict,
) -> AutotuneResult:
    """The scalar engine's sweep, re-expressed over whole populations.

    One :func:`~repro.gpu.vecmodel.kernel_lower_bound_batch` call replaces
    the per-candidate bound loop; a stable argsort reproduces the scalar
    ``sorted(..., key=(bound, index))`` order exactly; candidates are then
    priced in numpy batches with the branch-and-bound cutoff applied as an
    array mask *inside* each batch.  Masking mid-batch is safe for the
    same reason the between-chunk break is: a masked candidate's bound
    exceeded some incumbent's *achieved* time, so its own time is strictly
    greater and it can affect neither the winner nor the index tie-break
    (every candidate achieving the minimum time is priced).  Because
    :func:`~repro.gpu.vecmodel.kernel_time_batch` is bit-identical to the
    scalar model, the winner and its full cycle breakdown equal the
    scalar engine's — only the ``evaluated``/``pruned`` split may differ
    (the mask prunes harder than the chunk-boundary check).

    Quarantined candidates and lanes the legality mask rejects (a legal
    tiling can still fail occupancy on an exotic device) fall back to
    :func:`_guarded_profile`, keeping skip accounting, quarantine entries
    and failure diagnostics identical to the scalar engine's.
    """
    with obs_trace.span(
        "autotune.search",
        gemm=f"{gemm.m}x{gemm.k}x{gemm.n}", bits=bits, candidates=len(space),
    ):
        bounds = kernel_lower_bound_batch(
            gemm, bits, arrays, device=device, **kernel_kwargs)
        order = np.argsort(bounds, kind="stable")
        policy = ExecPolicy.resolve()
        observe_gaps = obs_trace.active()
        best_key: tuple[float, int] | None = None
        best_perf: GpuKernelPerf | None = None
        evaluated = 0
        skipped = 0

        def scalar_fallback(i: int) -> None:
            nonlocal best_key, best_perf, evaluated, skipped
            perf = _guarded_profile(
                gemm, bits, space[i], device, policy, kernel_kwargs)
            if perf is None:
                skipped += 1
                return
            evaluated += 1
            key = (perf.total_cycles, i)
            if best_key is None or key < best_key:
                best_key, best_perf = key, perf

        if len(_QUARANTINE):
            quarantined = np.fromiter(
                (_QUARANTINE.contains(_candidate_key(gemm, bits, t))
                 for t in space),
                dtype=bool, count=len(space),
            )
            if quarantined.any():
                for i in np.flatnonzero(quarantined):
                    scalar_fallback(int(i))
                order = order[~quarantined[order]]

        pos = 0
        batch_size = _VEC_CHUNK_INIT
        while pos < len(order):
            if prune and best_key is not None and bounds[order[pos]] > best_key[0]:
                break  # sorted bounds: every remaining candidate is slower
            live = order[pos:pos + batch_size]
            pos += len(live)
            batch_size = _VEC_CHUNK
            if prune and best_key is not None:
                live = live[bounds[live] <= best_key[0]]
            if live.size == 0:
                continue
            batch = kernel_time_batch(
                gemm, bits, arrays.take(live), device=device, **kernel_kwargs)
            lanes = np.flatnonzero(batch.legal)
            if lanes.size < live.size:
                for i in live[~batch.legal]:
                    scalar_fallback(int(i))
            if lanes.size == 0:
                continue
            keep = live[lanes]
            totals = batch.total_cycles[lanes]
            evaluated += int(lanes.size)
            if observe_gaps:
                hist = obs_metrics.histogram(
                    "autotune_bound_gap_cycles", bits=bits)
                for gap in (totals - bounds[keep]):
                    hist.observe(float(gap))
            p = int(np.lexsort((keep, totals))[0])
            key = (float(totals[p]), int(keep[p]))
            if best_key is None or key < best_key:
                best_key, best_perf = key, batch.perf_at(int(lanes[p]))
        if best_perf is None:
            # never silently empty: every candidate failed or was skipped
            raise AutotuneError(
                f"autotune sweep for {gemm} at {bits}-bit on {device.name} "
                f"produced no survivor: {skipped} of {len(space)} candidates "
                f"failed permanently (quarantined)"
            )
        result = AutotuneResult(
            gemm=gemm,
            bits=bits,
            best=best_perf.tiling,
            best_perf=best_perf,
            candidates=len(space),
            evaluated=evaluated,
            pruned=len(space) - evaluated - skipped,
            skipped=skipped,
        )
        # inside the span: the flight-ring marker attaches to the search
        _count_sweep(result, engine="pruned")
    return result


def _count_sweep(result: AutotuneResult, *, engine: str) -> None:
    """Aggregate sweep tallies (once per profile sweep — never per item)."""
    obs_metrics.counter("autotune_sweeps", engine=engine).inc()
    obs_metrics.counter("autotune_candidates", engine=engine).inc(
        result.candidates)
    obs_metrics.counter("autotune_evaluated", engine=engine).inc(
        result.evaluated)
    obs_metrics.counter("autotune_pruned", engine=engine).inc(result.pruned)
    # flight-ring marker: one per sweep, addressable next to its spans
    obs_flight.instant(
        "autotune.sweep", cat="autotune", engine=engine,
        gemm=f"{result.gemm.m}x{result.gemm.k}x{result.gemm.n}",
        bits=result.bits, candidates=result.candidates,
        evaluated=result.evaluated, pruned=result.pruned,
        skipped=result.skipped, best_cycles=result.best_cycles,
    )


def autotune_reference(
    gemm: GemmShape,
    bits: int,
    *,
    device: GpuDevice = TU102,
    **kernel_kwargs,
) -> AutotuneResult:
    """The original serial exhaustive sweep, kept as the equivalence
    baseline: no pruning, no parallelism, no caching of any kind.
    ``python -m repro bench`` times the engine against this.  Profile
    runs wear the same retry/quarantine armor as the engine so a chaos
    plan degrades the baseline identically instead of killing it."""
    best: TilingParams | None = None
    best_perf: GpuKernelPerf | None = None
    policy = ExecPolicy.resolve()
    count = 0
    evaluated = 0
    skipped = 0
    with obs_trace.span(
        "autotune.reference", gemm=f"{gemm.m}x{gemm.k}x{gemm.n}", bits=bits
    ):
        for tiling in search_space(bits, device=device):
            count += 1
            perf = _guarded_profile(
                gemm, bits, tiling, device, policy, kernel_kwargs)
            if perf is None:
                skipped += 1
                continue
            evaluated += 1
            if best_perf is None or perf.total_cycles < best_perf.total_cycles:
                best, best_perf = tiling, perf
    if count == 0:
        raise _no_legal_tiling_error(gemm, bits, device)
    if best is None or best_perf is None:
        raise AutotuneError(
            f"reference sweep for {gemm} at {bits}-bit on {device.name} "
            f"produced no survivor: {skipped} of {count} candidates failed "
            f"permanently (quarantined)"
        )
    result = AutotuneResult(
        gemm=gemm, bits=bits, best=best, best_perf=best_perf,
        candidates=count, evaluated=evaluated, pruned=0, skipped=skipped,
    )
    _count_sweep(result, engine="reference")  # reference span already closed
    return result


def autotune(
    gemm: GemmShape,
    bits: int,
    *,
    device: GpuDevice = TU102,
    jobs: int | None = None,
    prune: bool | None = None,
    persistent: bool | None = None,
    **kernel_kwargs,
) -> AutotuneResult:
    """Sweep every legal tiling, profile each, return the fastest.

    ``jobs``/``prune``/``persistent`` override the engine defaults (see
    :func:`autotune_options`); every other keyword is forwarded to
    :func:`~repro.gpu.pipelinemodel.kernel_time` and participates in the
    cache key.
    """
    opts = _OPTIONS
    prune = opts.prune if prune is None else prune
    persistent = opts.persistent if persistent is None else persistent
    jobs = opts.jobs if jobs is None else jobs

    digest = stable_hash({
        "gemm": [gemm.m, gemm.k, gemm.n],
        "bits": bits,
        "device": device,
        "kwargs": kernel_kwargs,
        "code": _code_version(),
    })
    with _LOCK:
        cached = _MEM_CACHE.get(digest)
    if cached is not None:
        return cached
    if not opts.engine:
        # Faithful pre-optimization path: serial exhaustive sweep, memoized
        # in-process only (matching the original module-level dict cache).
        result = autotune_reference(gemm, bits, device=device, **kernel_kwargs)
        with _LOCK:
            return _MEM_CACHE.setdefault(digest, result)
    if persistent:
        data = _STORE.get(digest)
        if data is not None:
            try:
                result = AutotuneResult.from_json(data)
            except (KeyError, TypeError, ValueError) as exc:
                result = None  # stale/foreign entry: recompute
                obs_log.debug(
                    "autotune_cache_stale",
                    logger="repro.gpu.autotune",
                    digest=digest[:16], error=type(exc).__name__,
                )
            if result is not None and result.gemm == gemm and result.bits == bits:
                with _LOCK:
                    _MEM_CACHE.setdefault(digest, result)
                return _MEM_CACHE[digest]

    space, arrays = _legal_candidates(bits, device)
    if not space:
        raise _no_legal_tiling_error(gemm, bits, device)
    if pricing_mode() == "vector":
        result = _search_vector(
            gemm, bits, space, arrays, device,
            prune=prune, kernel_kwargs=kernel_kwargs,
        )
    else:
        result = _search_scalar(
            gemm, bits, space, device,
            prune=prune, jobs=jobs, kernel_kwargs=kernel_kwargs,
        )
    with _LOCK:
        result = _MEM_CACHE.setdefault(digest, result)
    if persistent:
        _STORE.put(digest, result.to_json())
    return result


def autotune_conv(
    spec: ConvSpec, bits: int, *, device: GpuDevice = TU102, **kernel_kwargs
) -> AutotuneResult:
    result = autotune(conv_gemm_shape(spec), bits, device=device, **kernel_kwargs)
    # per-layer cycle entry for the profile/metrics surface (idempotent)
    obs_metrics.gauge(
        "gpu_layer_cycles", layer=spec.name, bits=bits
    ).set(result.best_cycles)
    return result
