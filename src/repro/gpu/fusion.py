"""Quantization fusion (Sec. 4.4 / Fig. 12).

In a quantized network the convolution sits inside an element-wise
pipeline: ``quantize -> conv(+requant) -> dequantize -> quantize -> ReLU ->
dequantize``.  Each unfused stage is a bandwidth-bound kernel with its own
launch; fusing moves the work into the conv epilogue:

* **conv + dequant** — the conv writes fp32 directly, eliminating the
  dequantize kernel (its launch, its int8 read and its fp32 write), at the
  price of a 4x larger conv store.
* **conv + ReLU** — folding ReLU into the requantization clamp eliminates
  the *dequantize -> quantize -> ReLU* triple between the two ops entirely.

``pipeline_time`` prices each variant from the kernel cost model plus an
element-wise kernel model; ``fusion_speedups`` reproduces Fig. 12's two
series.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..types import ConvSpec
from .device import GpuDevice, TU102
from .pipelinemodel import conv_time
from .tiling import TilingParams


class FusionMode(enum.Enum):
    NONE = "none"
    CONV_DEQUANT = "conv+dequant"
    CONV_RELU = "conv+relu"


@dataclass(frozen=True)
class PipelinePerf:
    """Cycle totals of a conv + element-wise pipeline."""

    mode: FusionMode
    conv_cycles: float
    elementwise_cycles: float
    kernel_launches: int

    @property
    def total_cycles(self) -> float:
        return self.conv_cycles + self.elementwise_cycles

    def microseconds(self, device: GpuDevice = TU102) -> float:
        return device.microseconds(self.total_cycles)


def elementwise_kernel_cycles(
    read_bytes: float, write_bytes: float, *, device: GpuDevice = TU102
) -> float:
    """A bandwidth-bound element-wise kernel: traffic + launch overhead."""
    traffic = (read_bytes + write_bytes) / device.dram_bytes_per_cycle
    return traffic + device.launch_overhead_s * device.clock_hz


def pipeline_time(
    spec: ConvSpec,
    bits: int,
    mode: FusionMode,
    *,
    tiling: TilingParams | None = None,
    with_relu: bool = False,
    device: GpuDevice = TU102,
    **conv_kwargs,
) -> PipelinePerf:
    """Price the conv plus its surrounding element-wise stages.

    ``with_relu`` selects the longer pipeline that Fig. 12's conv+ReLU
    fusion experiment targets (set implicitly by ``mode=CONV_RELU``).
    """
    n_out = spec.output_elems
    elem = bits / 8

    if mode is FusionMode.CONV_DEQUANT:
        # conv writes fp32 directly (in-place dequant epilogue)
        conv = conv_time(spec, bits, tiling, device=device,
                         out_elem_bytes=4.0, **conv_kwargs)
        return PipelinePerf(mode, conv.total_cycles, 0.0, kernel_launches=1)

    if mode is FusionMode.CONV_RELU:
        # ReLU folded into the requant clamp: int8 out, nothing follows
        conv = conv_time(spec, bits, tiling, device=device,
                         out_elem_bytes=elem, **conv_kwargs)
        return PipelinePerf(mode, conv.total_cycles, 0.0, kernel_launches=1)

    # unfused: conv(+requant, int8 out) then the element-wise chain
    conv = conv_time(spec, bits, tiling, device=device,
                     out_elem_bytes=elem, **conv_kwargs)
    launches = 1
    ew = elementwise_kernel_cycles(n_out * elem, n_out * 4.0, device=device)
    launches += 1  # dequantize: int8 -> fp32
    if with_relu:
        # quantize (fp32 -> int8), ReLU (int8 -> int8)
        ew += elementwise_kernel_cycles(n_out * 4.0, n_out * elem, device=device)
        ew += elementwise_kernel_cycles(n_out * elem, n_out * elem, device=device)
        launches += 2
    return PipelinePerf(mode, conv.total_cycles, ew, kernel_launches=launches)


def fusion_speedups(
    spec: ConvSpec,
    bits: int = 8,
    *,
    tiling: TilingParams | None = None,
    device: GpuDevice = TU102,
    **conv_kwargs,
) -> dict[str, float]:
    """Fig. 12's two bars for one layer: fused-over-unfused speedups."""
    base_dq = pipeline_time(spec, bits, FusionMode.NONE, tiling=tiling,
                            device=device, **conv_kwargs)
    fused_dq = pipeline_time(spec, bits, FusionMode.CONV_DEQUANT, tiling=tiling,
                             device=device, **conv_kwargs)
    base_relu = pipeline_time(spec, bits, FusionMode.NONE, tiling=tiling,
                              with_relu=True, device=device, **conv_kwargs)
    fused_relu = pipeline_time(spec, bits, FusionMode.CONV_RELU, tiling=tiling,
                               device=device, **conv_kwargs)
    return {
        "conv+dequant": base_dq.total_cycles / fused_dq.total_cycles,
        "conv+relu": base_relu.total_cycles / fused_relu.total_cycles,
    }
