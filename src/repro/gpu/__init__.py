"""Simulated NVIDIA Turing GPU (Sec. 4).

Mirrors the ARM package's two-layer structure:

* functional — exact ``mma``/``dp4a`` semantics (:mod:`repro.gpu.mma`) and
  an implicit-precomp-GEMM convolution (:mod:`repro.gpu.implicit_gemm`)
  that walks the real Alg. 2 tile/fragment structure;
* performance — an analytic machine model (:mod:`repro.gpu.pipelinemodel`)
  fed by the coalescing/shared-memory analyzers (:mod:`repro.gpu.memory`),
  with the paper's knobs (tiling parameters, access reordering, register
  double buffering, in-place epilogue, quantization fusion) as explicit
  switches, plus cuDNN-dp4a / TensorRT baseline models and the profile-run
  autotuner.
"""

from .device import TU102, GpuDevice
from .mma import (
    mma_m8n8k16_int8,
    mma_m8n8k32_int4,
    dp4a,
    pack_int4,
    unpack_int4,
)
from .tiling import TilingParams, default_tiling, search_space, validate_tiling
from .precompute import PrecomputedOffsets, build_offsets
from .implicit_gemm import conv2d_implicit_gemm, ConvGpuOutput
from .memory import coalesced_transactions, lds_instructions, SmemAccessReport
from .pipelinemodel import GpuKernelPerf, kernel_time, conv_time
from .vecmodel import (
    BatchKernelPerf,
    TilingArrays,
    kernel_lower_bound_batch,
    kernel_time_batch,
    validate_mask,
)
from .fusion import FusionMode, pipeline_time, fusion_speedups
from .autotune import (
    autotune,
    autotune_reference,
    AutotuneResult,
    autotune_options,
    clear_cache,
    pricing_mode,
)
from .baselines import cudnn_dp4a_time, tensorrt_time
from .kernelsim import (
    BlockInstr,
    BlockSchedule,
    generate_block_program,
    execute_block_program,
    simulate_conv_block,
    schedule_block_program,
)

__all__ = [
    "TU102",
    "GpuDevice",
    "mma_m8n8k16_int8",
    "mma_m8n8k32_int4",
    "dp4a",
    "pack_int4",
    "unpack_int4",
    "TilingParams",
    "default_tiling",
    "search_space",
    "validate_tiling",
    "PrecomputedOffsets",
    "build_offsets",
    "conv2d_implicit_gemm",
    "ConvGpuOutput",
    "coalesced_transactions",
    "lds_instructions",
    "SmemAccessReport",
    "GpuKernelPerf",
    "kernel_time",
    "conv_time",
    "BatchKernelPerf",
    "TilingArrays",
    "kernel_lower_bound_batch",
    "kernel_time_batch",
    "validate_mask",
    "FusionMode",
    "pipeline_time",
    "fusion_speedups",
    "autotune",
    "autotune_reference",
    "AutotuneResult",
    "autotune_options",
    "clear_cache",
    "pricing_mode",
    "cudnn_dp4a_time",
    "tensorrt_time",
    "BlockInstr",
    "BlockSchedule",
    "generate_block_program",
    "execute_block_program",
    "simulate_conv_block",
    "schedule_block_program",
]
