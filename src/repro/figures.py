"""Regeneration of every evaluation table and figure (Sec. 5).

One function per paper artifact, each returning ``(labels, series)`` ready
for :func:`repro.analysis.report.format_table`.  The benchmark harness
(``benchmarks/``) calls these, prints the tables, and asserts the
paper-shape properties; the examples reuse them interactively.

Speedup conventions match the paper's bars: values are
``baseline_time / our_time``, so higher is better and the baseline is 1.0.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from .analysis.report import Series
from .analysis.space import model_space_report
from .arm.conv_runner import ncnn_conv_cycles, time_arm_conv, tvm_popcount_cycles
from .arm.cost_model import PI3B
from .arm.winograd_runner import WINOGRAD_BITS, time_winograd_conv
from .gpu.autotune import autotune_conv
from .gpu.baselines import cudnn_dp4a_time, tensorrt_time
from .gpu.device import TU102
from .gpu.fusion import fusion_speedups
from .gpu.pipelinemodel import conv_time
from .gpu.tiling import default_tiling
from .models import get_model_layers
from .obs import trace as obs_trace
from .perf.parallel import ParallelRunner
from .types import ConvSpec

ARM_BITS = tuple(range(2, 9))
GPU_BITS = (8, 4)


def _traced(fn):
    """Wrap a figure generator in a tracer span (no-op while disabled)."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with obs_trace.span(f"figure.{fn.__name__}", cat="figure"):
            return fn(*args, **kwargs)

    return wrapper


def _prewarm(fn, items, *, jobs: int | None = None) -> None:
    """Fan ``fn`` over independent work items purely to warm memo caches.

    Every per-layer figure loop below re-reads its results from those
    caches serially, so the series are bit-for-bit identical whether the
    prewarm ran with 1 worker, N workers, or not at all (``REPRO_JOBS``
    controls the fan-out).  Results are discarded here on purpose: the
    deterministic merge point is the cache, keyed by the work item.
    """
    items = list(items)
    if len(items) > 1:
        with obs_trace.span("figure.prewarm", cat="figure", items=len(items)):
            ParallelRunner(jobs).map(fn, items)


@dataclass(frozen=True)
class FigureData:
    """Labels + series + the baseline's absolute per-layer times."""

    figure: str
    labels: tuple[str, ...]
    series: tuple[Series, ...]
    baseline_label: str
    baseline_times: tuple[float, ...]  #: ms on ARM, us on GPU

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)


# ---------------------------------------------------------------------------
# ARM figures
# ---------------------------------------------------------------------------


@_traced
def fig7_arm_speedups(model: str = "resnet50", *, batch: int = 1) -> FigureData:
    """Fig. 7 (and Fig. 14/15 with other models): our 2~8-bit conv kernels
    vs the ncnn 8-bit baseline, per layer."""
    layers = get_model_layers(model, batch=batch)
    _prewarm(lambda sb: time_arm_conv(sb[0], sb[1]),
             [(s, b) for b in ARM_BITS for s in layers])
    base = [ncnn_conv_cycles(spec) for spec in layers]
    series = []
    for bits in ARM_BITS:
        ours = [time_arm_conv(spec, bits) for spec in layers]
        series.append(Series(
            f"{bits}-bit",
            tuple(b.total_cycles / o.total_cycles for b, o in zip(base, ours)),
        ))
    return FigureData(
        figure=f"fig7[{model}]",
        labels=tuple(spec.name for spec in layers),
        series=tuple(series),
        baseline_label="ncnn 8-bit (ms)",
        baseline_times=tuple(b.milliseconds() for b in base),
    )


@_traced
def fig8_arm_winograd(model: str = "resnet50") -> FigureData:
    """Fig. 8: GEMM-based vs winograd-based kernels at 4~6-bit on the
    3x3/s1 layers, against the ncnn baseline."""
    layers = [s for s in get_model_layers(model) if s.is_winograd_eligible()]
    base = [ncnn_conv_cycles(spec) for spec in layers]
    series = []
    for bits in WINOGRAD_BITS:
        gemm = [time_arm_conv(spec, bits) for spec in layers]
        series.append(Series(
            f"gemm {bits}-bit",
            tuple(b.total_cycles / g.total_cycles for b, g in zip(base, gemm)),
        ))
        wino = [time_winograd_conv(spec, bits) for spec in layers]
        series.append(Series(
            f"winograd {bits}-bit",
            tuple(b.total_cycles / w.total_cycles for b, w in zip(base, wino)),
        ))
    return FigureData(
        figure="fig8",
        labels=tuple(spec.name for spec in layers),
        series=tuple(series),
        baseline_label="ncnn 8-bit (ms)",
        baseline_times=tuple(b.milliseconds() for b in base),
    )


@_traced
def fig9_arm_popcount(model: str = "resnet50") -> FigureData:
    """Fig. 9: our 2-bit kernels vs the TVM popcount A2W2 baseline."""
    layers = get_model_layers(model)
    tvm = [tvm_popcount_cycles(spec) for spec in layers]
    ours = [time_arm_conv(spec, 2) for spec in layers]
    series = (Series(
        "ours 2-bit vs TVM",
        tuple(t.total_cycles / o.total_cycles for t, o in zip(tvm, ours)),
    ),)
    return FigureData(
        figure="fig9",
        labels=tuple(spec.name for spec in layers),
        series=series,
        baseline_label="TVM popcount (ms)",
        baseline_times=tuple(t.milliseconds() for t in tvm),
    )


@_traced
def fig13_space_overhead(model: str = "resnet50") -> FigureData:
    """Fig. 13: im2col and pad/pack space overheads per layer."""
    layers = get_model_layers(model)
    report = model_space_report(layers)
    series = (
        Series("im2col", tuple(r.im2col_ratio for r in report)),
        Series("pad+pack", tuple(r.pack_ratio for r in report)),
        Series("total", tuple(r.total_ratio for r in report)),
    )
    return FigureData(
        figure="fig13",
        labels=tuple(spec.name for spec in layers),
        series=series,
        baseline_label="activation+weight (KB)",
        baseline_times=tuple(r.baseline_bytes / 1024 for r in report),
    )


def fig14_arm_densenet() -> FigureData:
    return fig7_arm_speedups("densenet121")


def fig15_arm_scr() -> FigureData:
    return fig7_arm_speedups("scr-resnet50")


# ---------------------------------------------------------------------------
# GPU figures
# ---------------------------------------------------------------------------


@_traced
def fig10_gpu_speedups(model: str = "resnet50", *, batch: int = 1) -> FigureData:
    """Fig. 10 (and Fig. 16/17): our 4/8-bit kernels and TensorRT vs the
    cuDNN dp4a baseline."""
    layers = get_model_layers(model, batch=batch)
    _prewarm(lambda sb: autotune_conv(sb[0], sb[1]),
             [(s, b) for b in GPU_BITS for s in layers])
    base = [cudnn_dp4a_time(spec) for spec in layers]
    series = []
    for bits in GPU_BITS:
        ours = [autotune_conv(spec, bits) for spec in layers]
        series.append(Series(
            f"ours {bits}-bit",
            tuple(b.total_cycles / o.best_cycles for b, o in zip(base, ours)),
        ))
    trt = [tensorrt_time(spec) for spec in layers]
    series.append(Series(
        "TensorRT 8-bit",
        tuple(b.total_cycles / t.total_cycles for b, t in zip(base, trt)),
    ))
    return FigureData(
        figure=f"fig10[{model},b{batch}]",
        labels=tuple(spec.name for spec in layers),
        series=tuple(series),
        baseline_label="cuDNN dp4a (us)",
        baseline_times=tuple(b.microseconds() for b in base),
    )


@_traced
def fig11_gpu_autotune(model: str = "resnet50", *, batch: int = 1) -> FigureData:
    """Fig. 11: performance with profile-run tiling search over defaults."""
    layers = get_model_layers(model, batch=batch)
    _prewarm(lambda sb: autotune_conv(sb[0], sb[1]),
             [(s, b) for b in GPU_BITS for s in layers])
    series = []
    for bits in GPU_BITS:
        vals = []
        for spec in layers:
            tuned = autotune_conv(spec, bits).best_cycles
            default = conv_time(spec, bits, default_tiling(bits)).total_cycles
            vals.append(default / tuned)
        series.append(Series(f"{bits}-bit w/ profile", tuple(vals)))
    base = [conv_time(spec, 8, default_tiling(8)) for spec in layers]
    return FigureData(
        figure=f"fig11[b{batch}]",
        labels=tuple(spec.name for spec in layers),
        series=tuple(series),
        baseline_label="8-bit w/o profile (us)",
        baseline_times=tuple(b.microseconds() for b in base),
    )


@_traced
def fig12_gpu_fusion(model: str = "resnet50", *, batch: int = 1) -> FigureData:
    """Fig. 12: conv+dequant and conv+ReLU fusion speedups (8-bit)."""
    layers = get_model_layers(model, batch=batch)
    dq, relu = [], []
    for spec in layers:
        sp = fusion_speedups(spec, 8)
        dq.append(sp["conv+dequant"])
        relu.append(sp["conv+relu"])
    base = [cudnn_dp4a_time(spec) for spec in layers]
    return FigureData(
        figure=f"fig12[b{batch}]",
        labels=tuple(spec.name for spec in layers),
        series=(Series("conv+dequant", tuple(dq)),
                Series("conv+relu", tuple(relu))),
        baseline_label="unfused conv (us)",
        baseline_times=tuple(b.microseconds() for b in base),
    )


def fig16_gpu_scr() -> FigureData:
    return fig10_gpu_speedups("scr-resnet50", batch=1)


def fig17_gpu_densenet() -> FigureData:
    return fig10_gpu_speedups("densenet121", batch=1)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def tab1_configurations() -> dict[str, dict[str, object]]:
    """Tab. 1: the two simulated platforms' machine descriptions."""
    return {
        "ARM CPU": {
            "device": "Raspberry Pi 3B (simulated)",
            "architecture": "ARM Cortex-A53",
            "clock_hz": PI3B.clock_hz,
            "l1_bytes": PI3B.l1_bytes,
            "l2_bytes": PI3B.l2_bytes,
            "baseline": "ncnn-like 8-bit GEMM kernels",
        },
        "NVIDIA GPU": {
            "device": "RTX 2080Ti (simulated)",
            "architecture": "NVIDIA Turing TU102",
            "sm_count": TU102.sm_count,
            "clock_hz": TU102.clock_hz,
            "dram_bytes_per_sec": TU102.dram_bytes_per_sec,
            "baseline": "cuDNN-like dp4a kernels; TensorRT-like int8 kernels",
        },
    }
