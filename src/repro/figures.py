"""Regeneration of every evaluation table and figure (Sec. 5).

One function per paper artifact, each returning ``(labels, series)`` ready
for :func:`repro.analysis.report.format_table`.  The benchmark harness
(``benchmarks/``) calls these, prints the tables, and asserts the
paper-shape properties; the examples reuse them interactively.

Speedup conventions match the paper's bars: values are
``baseline_time / our_time``, so higher is better and the baseline is 1.0.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from .analysis.report import Series
from .analysis.space import model_space_report
from .backends import get_backend
from .models import get_model_layers
from .obs import trace as obs_trace
from .types import ConvSpec

ARM_BITS = tuple(range(2, 9))
GPU_BITS = (8, 4)


def _traced(fn):
    """Wrap a figure generator in a tracer span (no-op while disabled)."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with obs_trace.span(f"figure.{fn.__name__}", cat="figure"):
            return fn(*args, **kwargs)

    return wrapper


@dataclass(frozen=True)
class FigureData:
    """Labels + series + the baseline's absolute per-layer times."""

    figure: str
    labels: tuple[str, ...]
    series: tuple[Series, ...]
    baseline_label: str
    baseline_times: tuple[float, ...]  #: ms on ARM, us on GPU

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)


# ---------------------------------------------------------------------------
# ARM figures
# ---------------------------------------------------------------------------


@_traced
def fig7_arm_speedups(model: str = "resnet50", *, batch: int = 1) -> FigureData:
    """Fig. 7 (and Fig. 14/15 with other models): our 2~8-bit conv kernels
    vs the ncnn 8-bit baseline, per layer."""
    arm = get_backend("arm")
    layers = get_model_layers(model, batch=batch)
    arm.prewarm([(s, b, None) for b in ARM_BITS for s in layers])
    ncnn = arm.baselines()["ncnn"]
    base = [ncnn(spec) for spec in layers]
    series = []
    for bits in ARM_BITS:
        ours = [arm.price_conv(spec, bits) for spec in layers]
        series.append(Series(
            f"{bits}-bit",
            tuple(b.total_cycles / o.total_cycles for b, o in zip(base, ours)),
        ))
    return FigureData(
        figure=f"fig7[{model}]",
        labels=tuple(spec.name for spec in layers),
        series=tuple(series),
        baseline_label="ncnn 8-bit (ms)",
        baseline_times=tuple(b.milliseconds for b in base),
    )


@_traced
def fig8_arm_winograd(model: str = "resnet50") -> FigureData:
    """Fig. 8: GEMM-based vs winograd-based kernels at 4~6-bit on the
    3x3/s1 layers, against the ncnn baseline."""
    # the winograd bit range is an ARM-kernel property, not a figure knob
    from .arm.winograd_runner import WINOGRAD_BITS

    arm = get_backend("arm")
    layers = [s for s in get_model_layers(model) if s.is_winograd_eligible()]
    base = [arm.baselines()["ncnn"](spec) for spec in layers]
    series = []
    for bits in WINOGRAD_BITS:
        gemm = [arm.price_conv(spec, bits) for spec in layers]
        series.append(Series(
            f"gemm {bits}-bit",
            tuple(b.total_cycles / g.total_cycles for b, g in zip(base, gemm)),
        ))
        wino = [arm.price_conv(spec, bits, algorithm="winograd")
                for spec in layers]
        series.append(Series(
            f"winograd {bits}-bit",
            tuple(b.total_cycles / w.total_cycles for b, w in zip(base, wino)),
        ))
    return FigureData(
        figure="fig8",
        labels=tuple(spec.name for spec in layers),
        series=tuple(series),
        baseline_label="ncnn 8-bit (ms)",
        baseline_times=tuple(b.milliseconds for b in base),
    )


@_traced
def fig9_arm_popcount(model: str = "resnet50") -> FigureData:
    """Fig. 9: our 2-bit kernels vs the TVM popcount A2W2 baseline."""
    arm = get_backend("arm")
    layers = get_model_layers(model)
    popcount = arm.baselines()["tvm-popcount"]
    tvm = [popcount(spec) for spec in layers]
    ours = [arm.price_conv(spec, 2) for spec in layers]
    series = (Series(
        "ours 2-bit vs TVM",
        tuple(t.total_cycles / o.total_cycles for t, o in zip(tvm, ours)),
    ),)
    return FigureData(
        figure="fig9",
        labels=tuple(spec.name for spec in layers),
        series=series,
        baseline_label="TVM popcount (ms)",
        baseline_times=tuple(t.milliseconds for t in tvm),
    )


@_traced
def fig13_space_overhead(model: str = "resnet50") -> FigureData:
    """Fig. 13: im2col and pad/pack space overheads per layer."""
    layers = get_model_layers(model)
    report = model_space_report(layers)
    series = (
        Series("im2col", tuple(r.im2col_ratio for r in report)),
        Series("pad+pack", tuple(r.pack_ratio for r in report)),
        Series("total", tuple(r.total_ratio for r in report)),
    )
    return FigureData(
        figure="fig13",
        labels=tuple(spec.name for spec in layers),
        series=series,
        baseline_label="activation+weight (KB)",
        baseline_times=tuple(r.baseline_bytes / 1024 for r in report),
    )


def fig14_arm_densenet() -> FigureData:
    return fig7_arm_speedups("densenet121")


def fig15_arm_scr() -> FigureData:
    return fig7_arm_speedups("scr-resnet50")


# ---------------------------------------------------------------------------
# GPU figures
# ---------------------------------------------------------------------------


@_traced
def fig10_gpu_speedups(model: str = "resnet50", *, batch: int = 1) -> FigureData:
    """Fig. 10 (and Fig. 16/17): our 4/8-bit kernels and TensorRT vs the
    cuDNN dp4a baseline."""
    gpu = get_backend("gpu")
    layers = get_model_layers(model, batch=batch)
    gpu.prewarm([(s, b, None) for b in GPU_BITS for s in layers])
    baselines = gpu.baselines()
    base = [baselines["cudnn-dp4a"](spec) for spec in layers]
    series = []
    for bits in GPU_BITS:
        ours = [gpu.price_conv(spec, bits) for spec in layers]
        series.append(Series(
            f"ours {bits}-bit",
            tuple(b.total_cycles / o.total_cycles for b, o in zip(base, ours)),
        ))
    trt = [baselines["tensorrt"](spec) for spec in layers]
    series.append(Series(
        "TensorRT 8-bit",
        tuple(b.total_cycles / t.total_cycles for b, t in zip(base, trt)),
    ))
    return FigureData(
        figure=f"fig10[{model},b{batch}]",
        labels=tuple(spec.name for spec in layers),
        series=tuple(series),
        baseline_label="cuDNN dp4a (us)",
        baseline_times=tuple(b.microseconds for b in base),
    )


@_traced
def fig11_gpu_autotune(model: str = "resnet50", *, batch: int = 1) -> FigureData:
    """Fig. 11: performance with profile-run tiling search over defaults."""
    gpu = get_backend("gpu")
    layers = get_model_layers(model, batch=batch)
    gpu.prewarm([(s, b, None) for b in GPU_BITS for s in layers])
    series = []
    for bits in GPU_BITS:
        vals = []
        for spec in layers:
            tuned = gpu.price_conv(spec, bits).total_cycles
            default = gpu.price_conv(spec, bits, tuned=False).total_cycles
            vals.append(default / tuned)
        series.append(Series(f"{bits}-bit w/ profile", tuple(vals)))
    base = [gpu.price_conv(spec, 8, tuned=False) for spec in layers]
    return FigureData(
        figure=f"fig11[b{batch}]",
        labels=tuple(spec.name for spec in layers),
        series=tuple(series),
        baseline_label="8-bit w/o profile (us)",
        baseline_times=tuple(b.microseconds for b in base),
    )


@_traced
def fig12_gpu_fusion(model: str = "resnet50", *, batch: int = 1) -> FigureData:
    """Fig. 12: conv+dequant and conv+ReLU fusion speedups (8-bit)."""
    # kernel-fusion pipelines are a GPU-only experiment by construction
    from .gpu.fusion import fusion_speedups

    gpu = get_backend("gpu")
    layers = get_model_layers(model, batch=batch)
    dq, relu = [], []
    for spec in layers:
        sp = fusion_speedups(spec, 8, device=gpu.machine)
        dq.append(sp["conv+dequant"])
        relu.append(sp["conv+relu"])
    cudnn = gpu.baselines()["cudnn-dp4a"]
    base = [cudnn(spec) for spec in layers]
    return FigureData(
        figure=f"fig12[b{batch}]",
        labels=tuple(spec.name for spec in layers),
        series=(Series("conv+dequant", tuple(dq)),
                Series("conv+relu", tuple(relu))),
        baseline_label="unfused conv (us)",
        baseline_times=tuple(b.microseconds for b in base),
    )


def fig16_gpu_scr() -> FigureData:
    return fig10_gpu_speedups("scr-resnet50", batch=1)


def fig17_gpu_densenet() -> FigureData:
    return fig10_gpu_speedups("densenet121", batch=1)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def tab1_configurations() -> dict[str, dict[str, object]]:
    """Tab. 1: the paper's two simulated platforms, described by their
    registered backends."""
    arm, gpu = get_backend("arm"), get_backend("gpu")
    return {
        arm.display_name: arm.describe(),
        gpu.display_name: gpu.describe(),
    }


# ---------------------------------------------------------------------------
# Registry (the one list every reporting surface dispatches on)
# ---------------------------------------------------------------------------


def figure_registry() -> "dict[str, object]":
    """Figure name -> ``fn(model=..., batch=...)`` generator.

    The single source of truth for what is reproducible; the CLI, the
    profile/report surfaces and the bench/regress tooling all dispatch
    through it.  Figures pinned to one workload (fig14..fig17) ignore the
    model/batch arguments.
    """
    return {
        "fig7": lambda model="resnet50", batch=1:
            fig7_arm_speedups(model, batch=batch),
        "fig8": lambda model="resnet50", batch=1: fig8_arm_winograd(model),
        "fig9": lambda model="resnet50", batch=1: fig9_arm_popcount(model),
        "fig10": lambda model="resnet50", batch=1:
            fig10_gpu_speedups(model, batch=batch),
        "fig11": lambda model="resnet50", batch=1:
            fig11_gpu_autotune(model, batch=batch),
        "fig12": lambda model="resnet50", batch=1:
            fig12_gpu_fusion(model, batch=batch),
        "fig13": lambda model="resnet50", batch=1: fig13_space_overhead(model),
        "fig14": lambda model="resnet50", batch=1: fig14_arm_densenet(),
        "fig15": lambda model="resnet50", batch=1: fig15_arm_scr(),
        "fig16": lambda model="resnet50", batch=1: fig16_gpu_scr(),
        "fig17": lambda model="resnet50", batch=1: fig17_gpu_densenet(),
    }
