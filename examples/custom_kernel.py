#!/usr/bin/env python
"""Write your own micro-kernel in assembly text and run it.

The kernel generators emit instruction streams; the assembler round-trips
them through text, which means you can *author* a kernel as a listing,
assemble it, execute it bit-exactly on the functional simulator, and get
a cycle estimate from the pipeline model — the workflow the paper's
authors had, reduced to a Python session.

The kernel below is a deliberately naive 4x4 int8 GEMM tile (one SMLAL
per column, no interleaving, drain every step); the example then shows
what the paper's optimizations buy over it.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.arm.assembler import assemble, disassemble
from repro.arm.kernels import generate_smlal_kernel
from repro.arm.pipeline import PipelineModel
from repro.arm.simulator import ArmSimulator

# a 4x4 tile: A panel holds K columns of 4 int8 rows (padded to 8-byte
# loads), B panel holds K rows of 4 values; C is 4x4 int32.
def k_step(k: int) -> str:
    """One naive K step: load, multiply, drain immediately (no pipelining,
    no SMLAL chaining — everything the paper's scheme improves on)."""
    return f"""
; ---- k = {k} ----
LD1_8B {{v0}} [A+{8 * k}]
LD4R_B {{v2, v3, v4, v5}} [B+{4 * k}]
SMLAL_8H {{v8}} {{v0, v2}}
SMLAL_8H {{v9}} {{v0, v3}}
SMLAL_8H {{v10}} {{v0, v4}}
SMLAL_8H {{v11}} {{v0, v5}}
SADDW_4S {{v16}} {{v16, v8}}
SADDW_4S {{v17}} {{v17, v9}}
SADDW_4S {{v18}} {{v18, v10}}
SADDW_4S {{v19}} {{v19, v11}}
MOVI_ZERO {{v8}}
MOVI_ZERO {{v9}}
MOVI_ZERO {{v10}}
MOVI_ZERO {{v11}}
"""


def main() -> None:
    rng = np.random.default_rng(0)
    K = 4
    a = rng.integers(-8, 8, (4, K)).astype(np.int8)
    b = rng.integers(-8, 8, (K, 4)).astype(np.int8)

    # assemble the naive kernel: prologue + K unrolled steps + stores
    text = "\n".join(
        ["MOVI_ZERO {v16}", "MOVI_ZERO {v17}", "MOVI_ZERO {v18}",
         "MOVI_ZERO {v19}"]
        + [k_step(k) for k in range(K)]
        + [f"ST1_16B {{v{16 + j}}} [C+{16 * j}]" for j in range(4)]
    )
    stream = assemble(text)
    print(f"assembled {len(stream)} instructions; first three:")
    for ins in stream[:3]:
        print("  " + ins.render())

    # pack operands: A columns padded to 8 bytes, B rows of 4
    a_panel = np.zeros(8 * K, dtype=np.int8)
    for k in range(K):
        a_panel[8 * k : 8 * k + 4] = a[:, k]
    b_panel = np.zeros(4 * K, dtype=np.int8)
    for k in range(K):
        b_panel[4 * k : 4 * k + 4] = b[k]

    sim = ArmSimulator({
        "A": a_panel.view(np.uint8),
        "B": b_panel.view(np.uint8),
        "C": np.zeros(64, dtype=np.uint8),
    })
    sim.run(stream)
    tile = sim.buffer("C").view(np.int32).reshape(4, 4).T[:4, :4]
    ref = a.astype(np.int64) @ b.astype(np.int64)
    assert np.array_equal(tile[:4, :4], ref), (tile, ref)
    print("\nexecutes correctly: tile == A @ B")

    naive_cycles = PipelineModel().schedule(stream).cycles
    naive_macs = 4 * 4 * K
    print(f"naive kernel: {naive_cycles} cycles, "
          f"{naive_macs / naive_cycles:.2f} MACs/cycle")

    # the paper's 4-bit kernel at the same K, per the same pipeline model
    paper = generate_smlal_kernel(4, K)
    pc = paper.cycles().cycles
    print(f"paper's 16x4 SMLAL kernel: {pc} cycles for {16 * 4 * K} MACs, "
          f"{16 * 4 * K / pc:.2f} MACs/cycle")
    print("\nround-trip sanity: re-assembling the paper's kernel listing")
    again = assemble(disassemble(paper.stream))
    assert tuple(again) == paper.stream
    print(f"  {len(again)} instructions round-tripped exactly")


if __name__ == "__main__":
    main()
