#!/usr/bin/env python
"""GPU walk-through: implicit-GEMM conv, tiling auto-search, fusion.

Reproduces the Sec. 4/5.3 story on the simulated RTX 2080Ti:

1. run the implicit-precomp GEMM conv functionally (exact mma semantics),
2. auto-search tiling parameters for a few ResNet-50 layers and compare
   against the defaults (Fig. 11) and the cuDNN/TensorRT baselines
   (Fig. 10),
3. show what quantization fusion buys (Fig. 12) via the runtime passes.

Run:  python examples/gpu_autotune_and_fusion.py
"""

import numpy as np

from repro.conv import conv2d_ref
from repro.gpu import (
    TilingParams,
    conv2d_implicit_gemm,
    cudnn_dp4a_time,
    default_tiling,
    fusion_speedups,
    tensorrt_time,
)
from repro.gpu.autotune import autotune_conv
from repro.gpu.pipelinemodel import conv_time
from repro.models import resnet50_conv_layers
from repro.runtime import apply_all_fusions, conv_pipeline, estimate_graph_cycles
from repro.types import ConvSpec, Layout


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. functional: int4 conv through real mma.m8n8k32 fragments --------------
    small = ConvSpec("demo", in_channels=8, out_channels=16, height=8,
                     width=8, kernel=(3, 3), padding=(1, 1))
    x = rng.integers(-8, 8, small.input_shape(Layout.NHWC)).astype(np.int8)
    w = rng.integers(-8, 8, small.weight_shape(Layout.NCHW)).astype(np.int8)
    out = conv2d_implicit_gemm(
        small, x, w, bits=4, tiling=TilingParams(16, 16, 32, 32, 1, 1)
    )
    assert np.array_equal(out.data, conv2d_ref(small, x, w, layout=Layout.NHWC))
    print(f"functional: {small.describe()} via mma.m8n8k32 "
          f"({out.blocks} blocks) — bit-exact vs direct conv\n")

    # 2. autotune vs defaults vs baselines, batch 1 -----------------------------
    print(f"{'layer':>7} {'cuDNN us':>9} {'TRT us':>8} {'default us':>11} "
          f"{'tuned us':>9}  best tiling")
    for spec in resnet50_conv_layers()[:8]:
        cudnn = cudnn_dp4a_time(spec).microseconds()
        trt = tensorrt_time(spec).microseconds()
        default = conv_time(spec, 8, default_tiling(8)).microseconds()
        tuned = autotune_conv(spec, 8)
        print(f"{spec.name:>7} {cudnn:9.1f} {trt:8.1f} {default:11.1f} "
              f"{tuned.best_perf.microseconds():9.1f}  {tuned.best.describe()}")
    print()

    # 3. fusion: cost-model view and graph-rewrite view -------------------------
    spec = resnet50_conv_layers()[5]
    sp = fusion_speedups(spec, 8)
    print(f"fusion speedups on {spec.name} (cost model): "
          f"conv+dequant {sp['conv+dequant']:.2f}x, "
          f"conv+relu {sp['conv+relu']:.2f}x")

    graph = conv_pipeline(spec, 8)
    fused, report = apply_all_fusions(graph)
    before = estimate_graph_cycles(graph, "gpu")
    after = estimate_graph_cycles(fused, "gpu")
    print(f"graph rewrite: {len(graph)} ops -> {len(fused)} ops "
          f"({report.ops_eliminated} eliminated), "
          f"{before.kernel_launches} -> {after.kernel_launches} launches, "
          f"{before.total_cycles / after.total_cycles:.2f}x faster")


if __name__ == "__main__":
    main()
