#!/usr/bin/env python
"""End-to-end quantized CNN: calibrate, execute, fuse, price, sweep bits.

This is the paper's future-work direction ("integrate our low-bit
convolution optimizations ... to enable end-to-end optimization") built
out: a small CNN runs through the full quantize/conv/requant/relu pipeline
with calibrated scales, the Sec. 4.4 fusion passes rewrite every stage,
and both simulated backends price the whole network.  A bit-width sweep
shows the fidelity/performance trade the paper's kernels unlock.

Run:  python examples/end_to_end_qnn.py
"""

import numpy as np

from repro.analysis import sqnr_sweep
from repro.models.resnet50 import resnet50_all_conv_layers
from repro.runtime import (
    build_chain,
    calibrate_network,
    estimate_network_cycles,
    execute_network,
    random_weights,
)
from repro.runtime.network import estimate_model_cycles


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. a small CNN, calibrated post-training --------------------------------
    plan = [(16, 3, 1), (32, 3, 2), (32, 3, 1), (64, 1, 1)]
    net = build_chain("democnn", 3, plan, height=32, width=32, bits=8)
    weights = random_weights(net, rng)
    x = rng.normal(size=(1, 3, 32, 32))
    net = calibrate_network(net, x, weights)
    out = execute_network(net, x, weights)
    print(f"democnn: {len(net.stages)} stages, {net.total_macs / 1e6:.1f} MMACs, "
          f"output {out.shape}\n")

    # 2. fidelity vs bit width (the 'no accuracy loss' claim, quantified) -----
    def build(bits):
        raw = build_chain("democnn", 3, plan, height=32, width=32, bits=bits)
        return calibrate_network(raw, x, weights)

    print("bit width -> output SQNR (vs full-precision float network):")
    for r in sqnr_sweep(build, x, weights):
        bar = "#" * max(0, int(r.sqnr_db / 2))
        print(f"  {r.bits}-bit  {r.sqnr_db:6.1f} dB  {bar}")
    print()

    # 3. fusion: fewer kernels, same numerics ---------------------------------
    fused, report = net.fuse()
    assert np.array_equal(execute_network(fused, x, weights), out)
    for backend in ("arm", "gpu"):
        before = estimate_network_cycles(net, backend)
        after = estimate_network_cycles(fused, backend)
        print(f"{backend}: {before.kernel_launches} -> {after.kernel_launches} "
              f"kernels, {before.milliseconds():.3f} -> "
              f"{after.milliseconds():.3f} ms "
              f"({before.total_cycles / after.total_cycles:.2f}x)")
    print()

    # 4. full ResNet-50 (all 53 convs) end-to-end estimate --------------------
    layers = resnet50_all_conv_layers()[1:]  # quantized part (stem is fp32)
    print("ResNet-50 (52 quantized convs), end-to-end conv time estimate:")
    for backend in ("arm", "gpu"):
        unit = "ms"
        for bits in (8, 4, 2) if backend == "arm" else (8, 4):
            rep = estimate_model_cycles(layers, bits, backend)
            print(f"  {backend} {bits}-bit: {rep.milliseconds():8.2f} ms "
                  f"({rep.kernel_launches} kernels, fused)")


if __name__ == "__main__":
    main()
