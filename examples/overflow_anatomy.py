#!/usr/bin/env python
"""Anatomy of the Sec. 3.3 overflow analysis, live on the simulator.

The paper's instruction schemes work because the number of SMLAL/MLA
products chained in a narrow accumulator is capped *just* below the wrap
point.  This example builds worst-case operands, runs the real generated
kernel streams, and shows:

* the published chain length is exact (checked mode passes),
* one extra step silently corrupts the result (hardware wrap semantics),
* the checked mode catches the wrap at the exact instruction.

Run:  python examples/overflow_anatomy.py
"""

import numpy as np

from repro.arm.kernels import generate_mla_kernel, generate_smlal_kernel
from repro.arm.ratios import chain_table, mla_chain_length, smlal_chain_length
from repro.conv.padding import pack_a, pack_b
from repro.errors import OverflowDetected


def worst_case(bits: int, k: int, m_r: int, n_r: int):
    half = 1 << (bits - 1)
    worst = -(half - 1) if bits >= 7 else -half  # the scheme's value range
    a = np.full((m_r, k), worst, dtype=np.int8)
    b = np.full((k, n_r), worst, dtype=np.int8)
    return a, b, worst


def demo(bits: int) -> None:
    if bits in (2, 3):
        chain, m_r, n_r, gen = mla_chain_length(bits), 64, 1, generate_mla_kernel
        kwargs = lambda k: {"chain_steps": k}
        acc = "int8"
    else:
        chain, m_r, n_r, gen = smlal_chain_length(bits), 16, 4, generate_smlal_kernel
        kwargs = lambda k: {"round_steps": k}
        acc = "int16"
    if chain > 600:
        print(f"{bits}-bit: chain {chain} (too long to demo exhaustively)")
        return

    # safe at the published length
    a, b, worst = worst_case(bits, chain, m_r, n_r)
    kern = gen(bits, chain, **kwargs(chain))
    tile = kern.execute(pack_a(a, m_r), pack_b(b, n_r), check_overflow=True)
    expected = chain * worst * worst
    assert tile[0, 0] == expected
    print(f"{bits}-bit: {chain} worst-case products ({worst}*{worst}) chained "
          f"in {acc} -> {expected} (exact)")

    # one step further wraps
    a, b, _ = worst_case(bits, chain + 1, m_r, n_r)
    kern = gen(bits, chain + 1, **kwargs(chain + 1), allow_unsafe=True)
    wrapped = kern.execute(pack_a(a, m_r), pack_b(b, n_r), check_overflow=False)
    true = (chain + 1) * worst * worst
    print(f"         one more step: true {true}, hardware computes "
          f"{wrapped[0, 0]} (silent wrap!)")
    try:
        kern.execute(pack_a(a, m_r), pack_b(b, n_r), check_overflow=True)
    except OverflowDetected as e:
        print(f"         checked mode: {e}")


def main() -> None:
    print("published chain table:", chain_table(), "\n")
    for bits in (2, 3, 5, 6, 7, 8):
        demo(bits)
        print()


if __name__ == "__main__":
    main()
