#!/usr/bin/env python
"""Quickstart: quantize a tensor, run every convolution algorithm, and see
that they agree bit-for-bit — then peek at the paper's two analysis tables
(the accumulation-chain ratios and the winograd range rule).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ConvSpec, LinearQuantizer, conv2d
from repro.arm.ratios import chain_table
from repro.conv.winograd import winograd_eligible_bits, winograd_range_report


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. describe a layer -----------------------------------------------------
    spec = ConvSpec(
        "demo", in_channels=8, out_channels=16, height=16, width=16,
        kernel=(3, 3), stride=(1, 1), padding=(1, 1),
    )
    print(f"layer: {spec.describe()}")
    print(f"GEMM view: M={spec.gemm_m} K={spec.gemm_k} N={spec.gemm_n} "
          f"({spec.macs / 1e6:.2f} MMACs)\n")

    # 2. quantize float data to 4-bit -----------------------------------------
    q = LinearQuantizer(bits=4)
    x = q.quantize(rng.normal(size=spec.input_shape()))
    w = q.quantize(rng.normal(size=spec.weight_shape()))
    print(f"input  {x}: range [{x.data.min()}, {x.data.max()}], scale {float(x.scale):.4f}")
    print(f"weight {w}: range [{w.data.min()}, {w.data.max()}]\n")

    # 3. every algorithm computes the identical integer result ----------------
    results = {
        name: conv2d(spec, x.data, w.data, algorithm=name)
        for name in ("direct", "gemm", "winograd")
    }
    results["bitserial"] = conv2d(
        spec, np.clip(x.data, -2, 1), np.clip(w.data, -2, 1),
        algorithm="bitserial", bits_a=2, bits_w=2,
    )
    ref = results["direct"]
    for name in ("gemm", "winograd"):
        assert np.array_equal(results[name], ref), name
    print("direct == gemm == winograd: bit-exact OK")
    print(f"output int32 range: [{ref.min()}, {ref.max()}]\n")

    # 4. the paper's chain-ratio table (Sec. 3.3) ------------------------------
    print("accumulation chain lengths (SMLAL/MLA per SADDW drain):")
    for bits, chain in sorted(chain_table().items()):
        scheme = "MLA " if bits <= 3 else "SMLAL"
        print(f"  {bits}-bit  {scheme}  {chain:>3} : 1")

    # 5. the winograd range rule (Sec. 3.4) ------------------------------------
    print("\nwinograd F(2x2,3x3) range analysis:")
    for bits in range(2, 9):
        print(f"  {winograd_range_report(bits)}")
    print(f"eligible bit widths: {winograd_eligible_bits()}")


if __name__ == "__main__":
    main()
