#!/usr/bin/env python
"""ResNet-50 on the simulated ARM CPU: the Fig. 7 experiment end to end.

For every unique conv layer, price the ncnn 8-bit baseline and our 2~8-bit
kernels on the simulated Raspberry Pi 3B, print the per-layer speedup
table, and run one layer *functionally* through the real generated
instruction streams to show the perf numbers describe working kernels.

Run:  python examples/arm_resnet50_inference.py
"""

import numpy as np

from repro.analysis import format_table
from repro.arm.conv_runner import execute_arm_conv, ncnn_conv_cycles, time_arm_conv
from repro.conv import conv2d_ref
from repro.figures import fig7_arm_speedups
from repro.models import resnet50_conv_layers
from repro.types import ConvSpec, Layout


def main() -> None:
    # 1. the Fig. 7 table ------------------------------------------------------
    data = fig7_arm_speedups()
    print(f"== {data.figure}: speedup over ncnn 8-bit (simulated Pi 3B) ==")
    print(format_table(list(data.labels), list(data.series)))
    print()

    # 2. absolute times + breakdown for a few layers ---------------------------
    print("per-layer absolute estimates (ms), batch 1:")
    for spec in resnet50_conv_layers()[:6]:
        base = ncnn_conv_cycles(spec)
        ours2 = time_arm_conv(spec, 2)
        ours4 = time_arm_conv(spec, 4)
        print(f"  {spec.name:>7} {spec.describe():<46} "
              f"ncnn {base.milliseconds():7.2f}  "
              f"ours-4bit {ours4.milliseconds():7.2f}  "
              f"ours-2bit {ours2.milliseconds():7.2f}")
    print()

    # 3. prove the kernels are real: run a scaled-down layer through the
    #    functional simulator, instruction by instruction ----------------------
    small = ConvSpec("conv3-small", in_channels=8, out_channels=16,
                     height=10, width=10, kernel=(3, 3), padding=(1, 1))
    rng = np.random.default_rng(0)
    x = rng.integers(-8, 8, small.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-8, 8, small.weight_shape(Layout.NCHW)).astype(np.int8)
    out = execute_arm_conv(small, x, w, bits=4, check_overflow=True)
    ref = conv2d_ref(small, x, w)
    assert np.array_equal(out, ref)
    print(f"functional check: {small.describe()}")
    print("  4-bit SMLAL-scheme streams executed on the NEON simulator —")
    print("  output matches direct convolution bit-for-bit, no overflow.")


if __name__ == "__main__":
    main()
